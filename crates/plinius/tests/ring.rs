//! Epoch-ring guarantees: crash-atomic ring publishes for arbitrary depths and
//! fail points (property-based), deterministic crash/resume twins at depth > 2,
//! trainer rollback, sealed export/import between deployments, and the
//! torn-read-retry plumbing.

use plinius::{
    train_with_crash_schedule, MirrorModel, MirrorVfs, PliniusBuilder, PliniusContext,
    PliniusError, SealedEpoch, TrainingSetup,
};
use plinius_crypto::Key;
use plinius_darknet::config::{build_network, mnist_cnn_config};
use plinius_darknet::Network;
use plinius_pmem::CrashMode;
use plinius_romulus::FailPoint;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn test_key(seed: u64) -> Key {
    let mut rng = StdRng::seed_from_u64(seed);
    Key::generate_128(&mut rng)
}

fn ring_context(key: &Key) -> PliniusContext {
    let ctx = PliniusContext::small_test(24 * 1024 * 1024);
    ctx.provision_key_directly(key.clone());
    ctx
}

/// A small fixed-shape network; weights are a pure function of `seed`.
fn seeded_network(seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    build_network(&mnist_cnn_config(2, 4, 4), &mut rng).unwrap()
}

/// Stamps a recognisable per-epoch tag into the first parameter of the first
/// trainable layer, so a restored epoch can be identified cheaply.
fn tag_weights(net: &mut Network, tag: f32) {
    let layer = net
        .layers_mut()
        .iter_mut()
        .find(|l| l.is_trainable())
        .unwrap();
    let mut tensors: Vec<Vec<f32>> = layer.params().iter().map(|p| p.data.to_vec()).collect();
    tensors[0][0] = tag;
    layer.set_params(&tensors);
}

fn first_param(net: &Network) -> f32 {
    net.layers()
        .iter()
        .find(|l| l.is_trainable())
        .unwrap()
        .params()[0]
        .data[0]
}

fn weights(net: &Network) -> Vec<Vec<f32>> {
    net.layers()
        .iter()
        .filter(|l| l.is_trainable())
        .flat_map(|l| {
            l.params()
                .iter()
                .map(|p| p.data.to_vec())
                .collect::<Vec<_>>()
        })
        .collect()
}

/// How the final (crash-armed) publish is interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CrashPlan {
    /// No fail point armed: the publish completes.
    None,
    /// Crash before the (n+1)th direct twin write of the publish (n = 0 is before
    /// the target slot's meta invalidation; larger n land mid-tensor).
    DirectPublishes(usize),
    /// Crash right after the flip transaction enters MUTATING.
    MutatingState,
    /// Crash after the first n logged stores of the flip transaction (1..5 of 5).
    Stores(usize),
    /// Crash right after the flip transaction logically commits (COPYING set).
    CopyingState,
    /// Crash mid back-region copy, after the logical commit.
    BackCopies(usize),
}

impl CrashPlan {
    fn fail_point(self) -> Option<FailPoint> {
        match self {
            CrashPlan::None => None,
            CrashPlan::DirectPublishes(n) => Some(FailPoint::AfterDirectPublishes(n)),
            CrashPlan::MutatingState => Some(FailPoint::AfterMutatingState),
            CrashPlan::Stores(n) => Some(FailPoint::AfterStores(n)),
            CrashPlan::CopyingState => Some(FailPoint::AfterCopyingState),
            CrashPlan::BackCopies(n) => Some(FailPoint::AfterBackCopies(n)),
        }
    }
}

fn crash_plans() -> impl Strategy<Value = CrashPlan> {
    prop_oneof![
        Just(CrashPlan::None),
        (0usize..=12).prop_map(CrashPlan::DirectPublishes),
        Just(CrashPlan::MutatingState),
        (1usize..5).prop_map(CrashPlan::Stores),
        Just(CrashPlan::CopyingState),
        (0usize..=2).prop_map(CrashPlan::BackCopies),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The ring's crash contract, against an explicit reference model: for any depth
    /// `R in 2..=8`, any number of committed epochs and any fail point in the next
    /// publish, recovery yields the newest *complete* epoch, the retained listing is
    /// exactly the reference set (min(R, committed) epochs, minus only the evictee
    /// whose slot the interrupted publish had already invalidated), every listed
    /// epoch restores with its own iteration and weights, and every unlisted one is
    /// a clean [`PliniusError::EpochNotRetained`].
    #[test]
    fn ring_crash_recovery_matches_the_reference_model(
        ring in 2usize..=8,
        committed in 0u64..=10,
        plan in crash_plans(),
    ) {
        let key = test_key(0x52 ^ ((ring as u64) << 16) ^ committed);
        let ctx = ring_context(&key);
        let mut net = seeded_network(17);
        let mirror = MirrorModel::allocate_with_ring(&ctx, &net, ring).unwrap();
        // One meta invalidation plus one twin write per tensor.
        let num_tensors: usize = net
            .layers()
            .iter()
            .filter(|l| l.is_trainable())
            .map(|l| l.params().len())
            .sum();
        let publish_calls = 1 + num_tensors;

        for e in 1..=committed {
            tag_weights(&mut net, e as f32);
            net.set_iteration(e);
            mirror.mirror_out(&ctx, &net).unwrap();
        }

        // The crash-armed publish of epoch `committed + 1`.
        let next = committed + 1;
        tag_weights(&mut net, next as f32);
        net.set_iteration(next);
        if let Some(fp) = plan.fail_point() {
            ctx.romulus().inject_failure(fp);
        }
        let result = mirror.mirror_out(&ctx, &net);

        // Reference model: does the armed point actually fire, and if it rolls the
        // flip back, had the publish already invalidated the evictee's slot?
        let (fires, commits_next, invalidated) = match plan {
            CrashPlan::None => (false, true, false),
            CrashPlan::DirectPublishes(n) if n >= publish_calls => (false, true, false),
            CrashPlan::DirectPublishes(n) => (true, false, n >= 1),
            CrashPlan::MutatingState | CrashPlan::Stores(_) => (true, false, true),
            CrashPlan::CopyingState | CrashPlan::BackCopies(_) => (true, true, false),
        };
        prop_assert_eq!(result.is_err(), fires, "plan {:?}", plan);
        let newest = if commits_next { next } else { committed };
        let mut expected: Vec<u64> = (newest.saturating_sub(ring as u64 - 1).max(1)..=newest)
            .collect();
        // A rolled-back publish with the invalidation already written loses the
        // evictee (only a full ring has one: epoch `next - ring >= 1`).
        if !commits_next && invalidated && next > ring as u64 {
            expected.retain(|&e| e != next - ring as u64);
        }

        // Power failure + restart over the surviving pool.
        let pool = ctx.pool().clone();
        drop((ctx, mirror));
        let mut rng = StdRng::seed_from_u64(committed ^ ((ring as u64) << 8));
        pool.crash(&mut rng, CrashMode::DropUnflushed);
        let ctx2 = PliniusContext::open(pool, sim_clock::CostModel::sgx_eml_pm()).unwrap();
        ctx2.provision_key_directly(key);
        let mirror2 = MirrorModel::open(&ctx2).unwrap();

        prop_assert_eq!(mirror2.epoch(&ctx2).unwrap(), newest, "plan {:?}", plan);
        prop_assert_eq!(mirror2.epochs(&ctx2).unwrap(), expected.clone(), "plan {:?}", plan);
        let mut restored = seeded_network(18);
        for &e in &expected {
            let report = mirror2.restore_epoch(&ctx2, &mut restored, e).unwrap();
            prop_assert_eq!(report.epoch, e);
            prop_assert_eq!(report.iteration, e);
            prop_assert_eq!(restored.iteration(), e);
            prop_assert_eq!(first_param(&restored), e as f32);
        }
        for e in 1..=next {
            if !expected.contains(&e) {
                prop_assert!(matches!(
                    mirror2.restore_epoch(&ctx2, &mut restored, e),
                    Err(PliniusError::EpochNotRetained(_))
                ), "epoch {} should be gone (plan {:?})", e, plan);
            }
        }
        if newest > 0 {
            let report = mirror2.mirror_in(&ctx2, &mut restored).unwrap();
            prop_assert_eq!(report.epoch, newest);
            prop_assert_eq!(report.iteration, newest);
        }
    }
}

/// A depth-4 crash/resume twin at the trainer tier: a run crashed twice mid-training
/// must produce exactly the loss stream (and therefore weights) of an uninterrupted
/// twin — the deeper ring changes what is *retained*, never what is *current*.
#[test]
fn crashed_training_at_depth_4_matches_the_uninterrupted_twin() {
    let mut setup = TrainingSetup::small_test();
    // Momentum buffers are volatile by design (Darknet weight-file semantics), so
    // bit-exact twins need momentum 0: then the mirror holds the whole state.
    setup.model_config = plinius_darknet::mnist_cnn_config_with_momentum(2, 4, 8, 0.0);
    setup.trainer.ring_depth = 4;
    let crashed = train_with_crash_schedule(&setup, &[4, 9], true).unwrap();
    let clean = train_with_crash_schedule(&setup, &[], true).unwrap();
    assert_eq!(crashed.crashes, 2);
    assert_eq!(clean.crashes, 0);
    assert_eq!(crashed.completed_iteration, clean.completed_iteration);
    // Bit-exact loss streams: every post-crash iteration resumed from the mirror
    // with the weights (and batch stream) of the uninterrupted run.
    assert_eq!(crashed.losses, clean.losses);
}

/// `rollback_to` is real time travel: after rolling back, the live weights equal a
/// twin that never trained past that epoch, and re-training from there reconverges
/// to the original final weights.
#[test]
fn rollback_to_restores_an_earlier_epoch_bit_exactly() {
    let mut setup = TrainingSetup::small_test();
    // Momentum 0 so the mirrored tensors are the *entire* training state and
    // re-training after a rollback is bit-for-bit reproducible.
    setup.model_config = plinius_darknet::mnist_cnn_config_with_momentum(2, 4, 8, 0.0);
    let mut trainer = PliniusBuilder::new(setup.clone())
        .ring_depth(4)
        .build()
        .unwrap();
    trainer.run().unwrap();
    assert_eq!(trainer.iteration(), 12);
    let final_weights = weights(trainer.network());
    let mirror = trainer.mirror_handle().expect("pm-mirror backend");
    // mirror_frequency 1: epoch n holds iteration n; ring 4 retains 9..=12.
    assert_eq!(
        mirror.epochs(trainer.context()).unwrap(),
        vec![9, 10, 11, 12]
    );

    trainer.rollback_to(10).unwrap();
    assert_eq!(trainer.iteration(), 10);
    // A twin that stopped at iteration 10 has exactly these weights.
    let mut twin = PliniusBuilder::new(setup).ring_depth(4).build().unwrap();
    twin.run_at_most(10).unwrap();
    assert_eq!(weights(trainer.network()), weights(twin.network()));

    // Evicted and future epochs are clean errors.
    assert!(matches!(
        trainer.rollback_to(8),
        Err(PliniusError::EpochNotRetained(8))
    ));
    assert!(matches!(
        trainer.rollback_to(13),
        Err(PliniusError::EpochNotRetained(13))
    ));

    // Re-training from the rolled-back epoch is deterministic: same batches, same
    // final weights as the first pass.
    trainer.run().unwrap();
    assert_eq!(trainer.iteration(), 12);
    assert_eq!(weights(trainer.network()), final_weights);
}

/// Export/import round trip between two deployments: the sealed payload carries an
/// epoch across pools bit-exactly, is serialisable, and is rejected wholesale by a
/// deployment holding a different model key.
#[test]
fn sealed_epochs_move_between_deployments_bit_identically() {
    let key = test_key(41);
    // Source deployment: three tagged epochs on a depth-3 ring.
    let ctx_a = ring_context(&key);
    let mut net = seeded_network(21);
    let mirror_a = MirrorModel::allocate_with_ring(&ctx_a, &net, 3).unwrap();
    for e in 1..=3u64 {
        tag_weights(&mut net, e as f32);
        net.set_iteration(e);
        mirror_a.mirror_out(&ctx_a, &net).unwrap();
    }
    let epoch3_weights = weights(&net);
    let vfs_a = MirrorVfs::new(&ctx_a, &mirror_a);
    let payload = vfs_a.export(3).unwrap();
    assert_eq!(payload.epoch, 3);
    assert_eq!(payload.iteration, 3);
    // The wire format round-trips.
    let payload = SealedEpoch::from_bytes(&payload.to_bytes()).unwrap();

    // Destination deployment: same key, fresh pool, fresh mirror (default depth).
    let ctx_b = ring_context(&key);
    let template = seeded_network(22);
    let mirror_b = MirrorModel::allocate(&ctx_b, &template).unwrap();
    let vfs_b = MirrorVfs::new(&ctx_b, &mirror_b);
    let committed = vfs_b.import(&payload).unwrap();
    assert_eq!(committed, 1, "the import is the destination's first epoch");
    let mut restored = seeded_network(23);
    let report = mirror_b
        .restore_epoch(&ctx_b, &mut restored, committed)
        .unwrap();
    assert_eq!(report.iteration, 3, "the source iteration rides along");
    assert_eq!(weights(&restored), epoch3_weights);
    // The imported sealed bytes are byte-identical to the source's, end to end.
    let reexported = vfs_b.export(committed).unwrap();
    assert_eq!(reexported.arena, payload.arena);

    // A deployment with a different key must reject the payload outright.
    let ctx_c = ring_context(&test_key(42));
    let mirror_c = MirrorModel::allocate(&ctx_c, &seeded_network(21)).unwrap();
    let vfs_c = MirrorVfs::new(&ctx_c, &mirror_c);
    assert!(matches!(
        vfs_c.import(&payload),
        Err(PliniusError::Crypto(_))
    ));
    assert_eq!(mirror_c.epoch(&ctx_c).unwrap(), 0, "nothing was committed");
}

/// The torn-read counter is plumbed from the seqlock retry loop to the trainer
/// accessor that `WorkflowReport` reads: an adversarially interleaved publish must
/// surface as a non-zero `torn_read_retries()`.
#[test]
fn torn_read_retries_surface_through_the_trainer() {
    let mut setup = TrainingSetup::small_test();
    setup.trainer.max_iterations = 3;
    let mut trainer = PliniusBuilder::new(setup).build().unwrap();
    trainer.run().unwrap();
    assert_eq!(
        trainer.torn_read_retries(),
        0,
        "quiescent run never retries"
    );

    // Adversarial schedule: between the reader's header snapshot and its slot
    // reads, a publisher (through a separate cloned handle — publishing through
    // the reader's own handle would deadlock on its scratch lock) advances the
    // ring twice, republishing the very slot under the reader.
    let reader = trainer.mirror_handle().expect("pm-mirror backend");
    let publisher = reader.clone();
    let hook_ctx = trainer.context().clone();
    let mut nets: Vec<(Network, u64)> = vec![
        (trainer.network().clone(), 100),
        (trainer.network().clone(), 101),
    ];
    reader.set_torn_read_hook(Some(Box::new(move |attempt| {
        if attempt == 0 {
            for (mut net, iteration) in nets.drain(..) {
                net.set_iteration(iteration);
                publisher.mirror_out(&hook_ctx, &net).unwrap();
            }
        }
    })));
    // Shapes must match the trainer's model for mirror_in.
    let mut restored = trainer.network().clone();
    let report = reader.mirror_in(trainer.context(), &mut restored).unwrap();
    reader.set_torn_read_hook(None);
    assert_eq!(report.iteration, 101, "the consistent newest epoch wins");
    assert!(
        trainer.torn_read_retries() >= 1,
        "the interleaved publishes must be visible through the trainer accessor"
    );
}
