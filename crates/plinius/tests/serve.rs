//! Serving-tier guarantees: torn-read-free epoch snapshots under concurrent (and
//! adversarially interleaved) publishes, epoch monotonicity across mid-publish
//! crashes, and bit-identical serving results between the Sync and Overlapped
//! training pipelines.

use plinius::{
    InferenceServer, MirrorModel, PersistenceBackend, PipelineMode, PliniusBuilder, PliniusContext,
    PliniusError, PmDataset, ServeConfig, ServeSession, TrainingSetup,
};
use plinius_crypto::Key;
use plinius_darknet::Network;
use plinius_pmem::CrashMode;
use plinius_romulus::FailPoint;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn test_key(seed: u64) -> Key {
    let mut rng = StdRng::seed_from_u64(seed);
    Key::generate_128(&mut rng)
}

/// A fresh provisioned context (no dataset — the mirror tests drive the model
/// directly).
fn bare_context(key: &Key) -> PliniusContext {
    let ctx = PliniusContext::small_test(64 * 1024 * 1024);
    ctx.provision_key_directly(key.clone());
    ctx
}

/// A small mirror-every-iteration training setup on the PM-mirror backend.
fn serving_setup(max_iterations: u64) -> TrainingSetup {
    let mut setup = TrainingSetup::small_test();
    setup.model_config = plinius_darknet::mnist_cnn_config_with_momentum(2, 4, 8, 0.0);
    setup.backend = PersistenceBackend::PmMirror;
    setup.trainer.max_iterations = max_iterations;
    setup.trainer.mirror_frequency = 1;
    setup
}

fn deploy(setup: &TrainingSetup, key: &Key) -> PliniusContext {
    let ctx = PliniusContext::create(setup.cost.clone(), setup.pm_bytes).unwrap();
    ctx.provision_key_directly(key.clone());
    PmDataset::load(&ctx, &setup.dataset).unwrap();
    ctx
}

fn weights(net: &Network) -> Vec<Vec<f32>> {
    net.layers()
        .iter()
        .filter(|l| l.is_trainable())
        .flat_map(|l| {
            l.params()
                .iter()
                .map(|p| p.data.to_vec())
                .collect::<Vec<_>>()
        })
        .collect()
}

/// A small network whose weights are a pure function of `seed` (fixed shape).
fn seeded_network(seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    plinius_darknet::config::build_network(&plinius_darknet::mnist_cnn_config(2, 4, 8), &mut rng)
        .unwrap()
}

/// The named bugfix, exercised end to end: a reader whose slot read is interleaved
/// with publish flips must retry and come back with a *consistent* epoch — matching
/// iteration, epoch and tensors — never a mix.
///
/// The hook fires in the exact window between the reader's header snapshot and its
/// slot reads. Publishing **twice** in that window is the adversarial schedule: the
/// first publish flips to the other slot, the second republishes the very slot the
/// reader is about to read, so without the seqlock re-check the reader would return
/// epoch-3 tensors tagged with epoch 1's iteration.
#[test]
fn interleaved_publish_flips_force_a_retry_and_a_consistent_snapshot() {
    let key = test_key(7);
    let ctx = bare_context(&key);
    let net1 = seeded_network(1);
    let net2 = seeded_network(2);
    let net3 = seeded_network(3);
    let mirror = MirrorModel::allocate(&ctx, &net1).unwrap();

    // Epoch 1 (slot B): iteration 10, weights of net1.
    let mut published = net1.clone();
    published.set_iteration(10);
    mirror.mirror_out(&ctx, &published).unwrap();

    // The reader gets its own handle; the hook publishes through yet another one
    // (same persistent model, separate scratch — publishing through the reader's
    // own handle would deadlock on its scratch lock).
    let reader = mirror.clone();
    let publisher = mirror.clone();
    let hook_ctx = ctx.clone();
    let mut nets = vec![(net2.clone(), 20u64), (net3.clone(), 30u64)];
    reader.set_torn_read_hook(Some(Box::new(move |attempt| {
        if attempt == 0 {
            // Epoch 2 (slot A) then epoch 3 (slot B): the second publish overwrites
            // the slot the reader's first attempt is reading.
            for (net, iteration) in nets.drain(..) {
                let mut net = net;
                net.set_iteration(iteration);
                publisher.mirror_out(&hook_ctx, &net).unwrap();
            }
        }
    })));

    let mut restored = seeded_network(99);
    let report = reader.mirror_in(&ctx, &mut restored).unwrap();
    reader.set_torn_read_hook(None);

    // The first attempt saw epoch 1's header and epoch 3's bytes — it must have
    // been retried, and the result must be the consistent epoch 3.
    assert!(
        ctx.stats().value("mirror.torn_read_retries") >= 1,
        "the interleaved publishes must force at least one seqlock retry"
    );
    assert_eq!(report.epoch, 3);
    assert_eq!(report.iteration, 30);
    assert_eq!(restored.iteration(), 30);
    assert_eq!(weights(&restored), weights(&net3));
}

/// Without interleaving, the snapshot read passes on the first attempt and the
/// retry counter stays untouched.
#[test]
fn quiescent_reads_never_retry() {
    let key = test_key(8);
    let ctx = bare_context(&key);
    let net = seeded_network(4);
    let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
    mirror.mirror_out(&ctx, &net).unwrap();
    let mut restored = seeded_network(5);
    for _ in 0..3 {
        mirror.mirror_in(&ctx, &mut restored).unwrap();
    }
    assert_eq!(ctx.stats().value("mirror.torn_read_retries"), 0);
    assert_eq!(weights(&restored), weights(&net));
}

/// Real concurrency: a publisher thread streams epochs while a reader thread
/// restores in a loop. Every restore must return a (iteration → weights) pair that
/// matches what the publisher actually published for that iteration — a torn read
/// would pair one epoch's iteration with another's tensors.
#[test]
fn concurrent_publisher_and_reader_agree_on_every_observed_epoch() {
    const PUBLISHES: u64 = 12;
    let key = test_key(9);
    let ctx = bare_context(&key);
    let template = seeded_network(0);
    let mirror = MirrorModel::allocate(&ctx, &template).unwrap();
    // Expected weights per iteration, computed up front.
    let expected: Vec<Vec<Vec<f32>>> = (0..=PUBLISHES)
        .map(|i| weights(&seeded_network(100 + i)))
        .collect();
    // Epoch 1 / iteration 0 exists before the reader starts.
    let mut first = seeded_network(100);
    first.set_iteration(0);
    mirror.mirror_out(&ctx, &first).unwrap();

    std::thread::scope(|scope| {
        let publisher_ctx = ctx.clone();
        let publisher = mirror.clone();
        let reader_ctx = ctx.clone();
        let reader = mirror.clone();
        let expected = &expected;
        scope.spawn(move || {
            for i in 1..=PUBLISHES {
                let mut net = seeded_network(100 + i);
                net.set_iteration(i);
                publisher.mirror_out(&publisher_ctx, &net).unwrap();
            }
        });
        scope.spawn(move || {
            let mut restored = seeded_network(1000);
            let mut observed = 0u64;
            loop {
                let report = reader.mirror_in(&reader_ctx, &mut restored).unwrap();
                assert!(
                    report.iteration <= PUBLISHES,
                    "observed an iteration that was never published"
                );
                assert_eq!(
                    weights(&restored),
                    expected[report.iteration as usize],
                    "iteration {} came back with another epoch's tensors",
                    report.iteration
                );
                observed += 1;
                if report.iteration == PUBLISHES {
                    break;
                }
            }
            assert!(observed >= 1);
        });
    });
}

/// `MirrorModel::epoch()` never decreases across a mid-publish crash and recovery,
/// wherever the crash lands: between bulk slot writes, inside the epoch-flip
/// transaction, or around the redo-log phases.
#[test]
fn epoch_is_monotonic_across_mid_publish_crash_recovery() {
    for (case, failpoint) in [
        ("between slot publishes", FailPoint::AfterDirectPublishes(1)),
        (
            "after most slot publishes",
            FailPoint::AfterDirectPublishes(3),
        ),
        ("inside the flip transaction", FailPoint::AfterStores(1)),
        ("after mutating main state", FailPoint::AfterMutatingState),
        ("while copying state back", FailPoint::AfterCopyingState),
    ] {
        let setup = serving_setup(6);
        let key = test_key(10);
        let ctx = deploy(&setup, &key);
        let pool = ctx.pool().clone();
        let mut trainer = PliniusBuilder::new(setup.clone())
            .context(ctx)
            .build()
            .unwrap();
        for _ in 0..3 {
            trainer.step().unwrap();
        }
        let mirror = trainer.mirror_handle().unwrap();
        // Sync commits one epoch per clean iteration; the overlapped pipeline lags
        // one behind until the next join.
        let epoch_before = mirror.epoch(trainer.context()).unwrap();
        assert!(
            (2..=3).contains(&epoch_before),
            "{case}: committed epochs track clean iterations (got {epoch_before})"
        );
        trainer.context().romulus().inject_failure(failpoint);
        assert!(trainer.step().is_err(), "{case}: armed crash must fire");
        drop(trainer);
        let mut crash_rng = StdRng::seed_from_u64(77);
        pool.crash(&mut crash_rng, CrashMode::ArbitraryEviction);
        let ctx2 = PliniusContext::open(pool, setup.cost.clone()).unwrap();
        ctx2.provision_key_directly(key.clone());
        let recovered = MirrorModel::open(&ctx2).unwrap();
        let epoch_after = recovered.epoch(&ctx2).unwrap();
        assert!(
            epoch_after >= epoch_before,
            "{case}: epoch decreased across recovery ({epoch_before} -> {epoch_after})"
        );
        // Only 4 iterations ever ran, so recovery can never surface more epochs
        // than were actually published.
        assert!(
            epoch_after <= 4,
            "{case}: recovery invented epochs ({epoch_before} -> {epoch_after})"
        );
        // Resume and finish: the epoch keeps climbing from the recovered point.
        let mut resumed = PliniusBuilder::new(setup.clone())
            .context(ctx2)
            .build()
            .unwrap();
        resumed.run().unwrap();
        let final_epoch = resumed
            .mirror_handle()
            .unwrap()
            .epoch(resumed.context())
            .unwrap();
        assert!(final_epoch > epoch_after, "{case}: training must publish");
    }
}

/// Serve-while-training twin run: the same interleaving of training bursts and
/// serving batches, driven once per pipeline mode, must produce bit-identical
/// serving results — same predictions (order-sensitive hash), same correct count,
/// same served epochs, same hot-swap count. Only simulated timing may differ.
#[test]
fn serving_results_are_bit_identical_between_sync_and_overlapped_training() {
    let run = |mode: PipelineMode| {
        let setup = serving_setup(12);
        let key = test_key(11);
        let ctx = deploy(&setup, &key);
        let mut trainer = PliniusBuilder::new(setup.clone())
            .context(ctx)
            .pipeline_mode(mode)
            .build()
            .unwrap();
        // Commit the first epochs, then attach the server to the live mirror.
        trainer.run_at_most(2).unwrap();
        let template = setup.build_network().unwrap();
        let server = InferenceServer::new(
            trainer.context(),
            trainer.mirror_handle().unwrap(),
            &template,
        )
        .unwrap();
        let batch = server.max_batch().min(4);
        let mut session = ServeSession::new(
            server,
            setup.dataset.clone(),
            ServeConfig {
                batch,
                arrival_ns: 10_000,
                requests: 48,
                seed: 5,
            },
        )
        .unwrap();
        let mut epochs_served = Vec::new();
        // Alternate training bursts with serving batches until both are done.
        // `run_at_most` drains the in-flight publish on exit, so at every pump the
        // committed epoch is identical in both modes.
        while !session.is_done() {
            trainer.run_at_most(2).unwrap();
            for _ in 0..2 {
                if session.pump_one_batch().unwrap() {
                    epochs_served.push(session.server().epoch());
                }
            }
        }
        trainer.run().unwrap();
        let report = session.report();
        (report, epochs_served)
    };
    let (sync_report, sync_epochs) = run(PipelineMode::Sync);
    let (over_report, over_epochs) = run(PipelineMode::Overlapped);
    assert_eq!(sync_report.predictions_hash, over_report.predictions_hash);
    assert_eq!(sync_report.correct, over_report.correct);
    assert_eq!(sync_report.served, over_report.served);
    assert_eq!(sync_report.swaps, over_report.swaps);
    assert_eq!(sync_report.final_epoch, over_report.final_epoch);
    assert_eq!(sync_epochs, over_epochs);
    // The scenario actually exercised the hot-swap path mid-traffic.
    assert!(
        sync_report.swaps >= 1,
        "training must have published epochs the server hot-swapped in"
    );
    assert!(
        sync_epochs.windows(2).all(|w| w[0] <= w[1]),
        "served epochs must be monotonic"
    );
}

/// A server attached before any epoch committed is rejected, and one attached to a
/// live trainer serves each batch from exactly one committed epoch.
#[test]
fn server_rejects_epoch_zero_and_tracks_committed_epochs() {
    let setup = serving_setup(6);
    let key = test_key(12);
    let ctx = deploy(&setup, &key);
    let mut trainer = PliniusBuilder::new(setup.clone())
        .context(ctx)
        .build()
        .unwrap();
    let template = setup.build_network().unwrap();
    let err = InferenceServer::new(
        trainer.context(),
        trainer.mirror_handle().unwrap(),
        &template,
    )
    .unwrap_err();
    assert_eq!(err, PliniusError::NoCommittedEpoch);

    trainer.run_at_most(1).unwrap();
    let mut server = InferenceServer::new(
        trainer.context(),
        trainer.mirror_handle().unwrap(),
        &template,
    )
    .unwrap();
    assert_eq!(server.epoch(), 1);
    let input = setup.dataset.image(0).to_vec();
    let committed_now = |trainer: &plinius::PliniusTrainer| {
        trainer
            .mirror_handle()
            .unwrap()
            .epoch(trainer.context())
            .unwrap()
    };
    for _ in 0..3 {
        trainer.run_at_most(1).unwrap();
        server.classify_batch(&input).unwrap();
        assert_eq!(
            server.epoch(),
            committed_now(&trainer),
            "a batch boundary always picks up the committed epoch"
        );
    }
    assert_eq!(server.swaps(), 3);
}
