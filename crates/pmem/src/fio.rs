//! FIO-style storage characterization (Fig. 2 of the paper).
//!
//! The paper characterises its storage devices by running FIO with sequential and
//! random read/write workloads over SSD (Ext4), PM (Ext4 + DAX) and a Ramdisk (tmpfs),
//! with 1–8 threads, a 512 MB file per thread and 4 KB blocks, issuing an `fsync` per
//! written block. This module reproduces that experiment on the simulated devices: a
//! [`FioJob`] describes one bar of the figure and [`FioJob::run`] returns the modeled
//! throughput.

use sim_clock::DeviceKind;
use std::fmt;

/// Access pattern of a FIO job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// Blocks are accessed in increasing offset order.
    Sequential,
    /// Blocks are accessed in a uniformly random order.
    Random,
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::Sequential => write!(f, "sequential"),
            Pattern::Random => write!(f, "random"),
        }
    }
}

/// Direction of a FIO job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Read the file.
    Read,
    /// Write the file, issuing an fsync after every block (as in the paper).
    Write,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Read => write!(f, "read"),
            OpKind::Write => write!(f, "write"),
        }
    }
}

/// Per-device parameters of the FIO model.
///
/// These numbers characterise the *devices* of the paper's testbed (an Ext4 SSD, an
/// Ext4+DAX Optane namespace, and a tmpfs Ramdisk); they are intentionally separate from
/// the enclave-centric [`sim_clock::CostModel`] constants because Fig. 2 measures raw
/// device throughput outside any enclave.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FioDeviceProfile {
    /// Per-thread sequential read bandwidth, bytes/s.
    pub read_bw_per_thread: f64,
    /// Per-thread sequential write bandwidth, bytes/s.
    pub write_bw_per_thread: f64,
    /// Multiplier applied to bandwidth for random access (<= 1.0).
    pub random_factor: f64,
    /// Fixed software-stack latency per block operation (syscall, page cache, DAX), ns.
    pub per_op_latency_ns: f64,
    /// Cost of an fsync following each written block, ns.
    pub fsync_ns: f64,
    /// Aggregate device read bandwidth cap across all threads, bytes/s.
    pub max_read_bw: f64,
    /// Aggregate device write bandwidth cap across all threads, bytes/s.
    pub max_write_bw: f64,
}

impl FioDeviceProfile {
    /// Device profile for the given [`DeviceKind`], matching the paper's testbed
    /// (SATA SSD + Ext4, Optane + Ext4/DAX, DRAM tmpfs).
    pub fn for_device(device: DeviceKind) -> Self {
        match device {
            DeviceKind::Ssd => FioDeviceProfile {
                read_bw_per_thread: 0.45e9,
                write_bw_per_thread: 0.40e9,
                random_factor: 0.55,
                per_op_latency_ns: 9_000.0,
                fsync_ns: 180_000.0,
                max_read_bw: 0.55e9,
                max_write_bw: 0.50e9,
            },
            DeviceKind::PersistentMemory => FioDeviceProfile {
                read_bw_per_thread: 2.6e9,
                write_bw_per_thread: 1.2e9,
                random_factor: 0.80,
                per_op_latency_ns: 1_100.0,
                fsync_ns: 2_500.0,
                max_read_bw: 7.0e9,
                max_write_bw: 2.5e9,
            },
            DeviceKind::Dram => FioDeviceProfile {
                read_bw_per_thread: 4.5e9,
                write_bw_per_thread: 3.5e9,
                random_factor: 0.92,
                per_op_latency_ns: 700.0,
                fsync_ns: 800.0,
                max_read_bw: 22.0e9,
                max_write_bw: 16.0e9,
            },
        }
    }
}

/// One FIO measurement point: a device, an access pattern, a direction and a
/// thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FioJob {
    /// The device under test.
    pub device: DeviceKind,
    /// Sequential or random access.
    pub pattern: Pattern,
    /// Read or write (writes fsync after each block).
    pub op: OpKind,
    /// Number of concurrent FIO threads (the paper uses 1, 2, 4, 8).
    pub threads: usize,
    /// File size per thread in bytes (512 MB in the paper).
    pub file_size_per_thread: u64,
    /// Block size in bytes (4 KB in the paper).
    pub block_size: u64,
}

impl FioJob {
    /// Creates a job with the paper's defaults (512 MB per thread, 4 KB blocks).
    pub fn paper_default(device: DeviceKind, pattern: Pattern, op: OpKind, threads: usize) -> Self {
        FioJob {
            device,
            pattern,
            op,
            threads,
            file_size_per_thread: 512 * 1024 * 1024,
            block_size: 4 * 1024,
        }
    }

    /// Runs the job against the modeled device and returns the aggregate result.
    ///
    /// # Panics
    ///
    /// Panics if `threads` or `block_size` is zero.
    pub fn run(&self) -> FioResult {
        assert!(self.threads > 0, "FIO job needs at least one thread");
        assert!(self.block_size > 0, "FIO block size must be non-zero");
        let profile = FioDeviceProfile::for_device(self.device);
        let per_thread_bw = match self.op {
            OpKind::Read => profile.read_bw_per_thread,
            OpKind::Write => profile.write_bw_per_thread,
        };
        let pattern_factor = match self.pattern {
            Pattern::Sequential => 1.0,
            Pattern::Random => profile.random_factor,
        };
        let blocks_per_thread = self.file_size_per_thread / self.block_size;
        // Time for one thread to process its file.
        let transfer_ns_per_block = self.block_size as f64 / (per_thread_bw * pattern_factor) * 1e9;
        let fsync_ns = if self.op == OpKind::Write {
            profile.fsync_ns
        } else {
            0.0
        };
        let per_block_ns = transfer_ns_per_block + profile.per_op_latency_ns + fsync_ns;
        let per_thread_seconds = blocks_per_thread as f64 * per_block_ns / 1e9;
        let total_bytes = self.file_size_per_thread * self.threads as u64;
        // Uncapped aggregate throughput assumes perfect thread scaling ...
        let uncapped = total_bytes as f64 / per_thread_seconds;
        // ... but the device enforces an aggregate bandwidth ceiling.
        let cap = match self.op {
            OpKind::Read => profile.max_read_bw,
            OpKind::Write => profile.max_write_bw,
        } * pattern_factor;
        let throughput = uncapped.min(cap);
        FioResult {
            job: *self,
            total_bytes,
            throughput_bytes_per_s: throughput,
            elapsed_seconds: total_bytes as f64 / throughput,
        }
    }
}

/// The outcome of a [`FioJob`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FioResult {
    /// The job that produced this result.
    pub job: FioJob,
    /// Total bytes transferred across all threads.
    pub total_bytes: u64,
    /// Aggregate throughput in bytes per second.
    pub throughput_bytes_per_s: f64,
    /// Modeled wall-clock time of the job in seconds.
    pub elapsed_seconds: f64,
}

impl FioResult {
    /// Throughput in GB/s, the unit used by Fig. 2.
    pub fn throughput_gbps(&self) -> f64 {
        self.throughput_bytes_per_s / 1e9
    }
}

impl fmt::Display for FioResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} x{}: {:.3} GB/s",
            self.job.device,
            self.job.pattern,
            self.job.op,
            self.job.threads,
            self.throughput_gbps()
        )
    }
}

/// Runs the full Fig. 2 sweep: every device, pattern, direction and thread count.
pub fn figure2_sweep() -> Vec<FioResult> {
    let mut out = Vec::new();
    for op in [OpKind::Read, OpKind::Write] {
        for pattern in [Pattern::Random, Pattern::Sequential] {
            for device in [
                DeviceKind::Ssd,
                DeviceKind::PersistentMemory,
                DeviceKind::Dram,
            ] {
                for threads in [1usize, 2, 4, 8] {
                    out.push(FioJob::paper_default(device, pattern, op, threads).run());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tp(device: DeviceKind, pattern: Pattern, op: OpKind, threads: usize) -> f64 {
        FioJob::paper_default(device, pattern, op, threads)
            .run()
            .throughput_gbps()
    }

    #[test]
    fn dax_pm_beats_ssd_and_loses_to_ramdisk_on_reads() {
        for pattern in [Pattern::Sequential, Pattern::Random] {
            for threads in [1, 2, 4, 8] {
                let ssd = tp(DeviceKind::Ssd, pattern, OpKind::Read, threads);
                let pm = tp(DeviceKind::PersistentMemory, pattern, OpKind::Read, threads);
                let ram = tp(DeviceKind::Dram, pattern, OpKind::Read, threads);
                assert!(pm > ssd, "{pattern} x{threads}: PM {pm} vs SSD {ssd}");
                assert!(ram > pm, "{pattern} x{threads}: RAM {ram} vs PM {pm}");
            }
        }
    }

    #[test]
    fn fsync_per_block_cripples_ssd_writes() {
        // The paper's write workloads fsync every 4 KB block, which drops SSD throughput
        // to the order of 0.01-0.1 GB/s while PM-DAX stays in the GB/s range.
        let ssd = tp(DeviceKind::Ssd, Pattern::Sequential, OpKind::Write, 1);
        let pm = tp(
            DeviceKind::PersistentMemory,
            Pattern::Sequential,
            OpKind::Write,
            1,
        );
        assert!(ssd < 0.1, "SSD write throughput {ssd} GB/s");
        assert!(pm > 0.4, "PM write throughput {pm} GB/s");
        assert!(pm / ssd > 10.0);
    }

    #[test]
    fn random_is_never_faster_than_sequential() {
        for device in [
            DeviceKind::Ssd,
            DeviceKind::PersistentMemory,
            DeviceKind::Dram,
        ] {
            for op in [OpKind::Read, OpKind::Write] {
                let seq = tp(device, Pattern::Sequential, op, 4);
                let rand = tp(device, Pattern::Random, op, 4);
                assert!(rand <= seq + 1e-9, "{device} {op}: rand {rand} > seq {seq}");
            }
        }
    }

    #[test]
    fn throughput_is_monotone_in_threads_until_the_cap() {
        for device in [
            DeviceKind::Ssd,
            DeviceKind::PersistentMemory,
            DeviceKind::Dram,
        ] {
            let mut prev = 0.0;
            for threads in [1, 2, 4, 8] {
                let t = tp(device, Pattern::Sequential, OpKind::Read, threads);
                assert!(t + 1e-12 >= prev, "{device} x{threads}: {t} < {prev}");
                prev = t;
            }
        }
    }

    #[test]
    fn sweep_covers_every_figure_bar() {
        let sweep = figure2_sweep();
        // 2 ops x 2 patterns x 3 devices x 4 thread counts.
        assert_eq!(sweep.len(), 48);
        // Result display mentions the device and thread count.
        let line = sweep[0].to_string();
        assert!(line.contains("GB/s"));
    }

    #[test]
    fn elapsed_time_consistent_with_throughput() {
        let r = FioJob::paper_default(DeviceKind::Ssd, Pattern::Sequential, OpKind::Read, 2).run();
        let recomputed = r.total_bytes as f64 / r.throughput_bytes_per_s;
        assert!((recomputed - r.elapsed_seconds).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let mut job = FioJob::paper_default(DeviceKind::Ssd, Pattern::Sequential, OpKind::Read, 1);
        job.threads = 0;
        let _ = job.run();
    }
}
