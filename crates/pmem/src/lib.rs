//! # plinius-pmem
//!
//! A byte-addressable **persistent-memory simulator** standing in for the Intel Optane DC
//! DIMMs used by the Plinius paper (DSN'21). It models exactly the aspects of PM that
//! Plinius and Romulus depend on:
//!
//! * byte-granular loads and stores into a DAX-style mapped region ([`PmemPool`]);
//! * cache-line write-backs (`CLFLUSH`, `CLFLUSHOPT`, `CLWB`) and `SFENCE` persistence
//!   fences, with the three PWB/fence combinations Romulus supports ([`PwbKind`]);
//! * the crash model: stores that were never flushed may or may not survive a power
//!   failure ([`CrashMode`]), which is what persistent transactional memories must
//!   tolerate;
//! * calibrated latency/bandwidth costs charged to a shared [`sim_clock::SimClock`];
//! * the FIO-style device characterization of the paper's Fig. 2 ([`fio`]).
//!
//! # Example
//!
//! ```
//! use plinius_pmem::{PmemPool, PwbKind};
//!
//! let pool = PmemPool::builder(4096).pwb(PwbKind::ClflushOptSfence).build()?;
//! pool.write(0, b"model weights")?;
//! pool.flush(0, 13)?;          // persistent write-back
//! pool.fence();                // ordering point
//! assert_eq!(pool.read_vec(0, 13)?, b"model weights");
//! # Ok::<(), plinius_pmem::PmemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

pub mod fio;
pub mod pool;

pub use fio::{figure2_sweep, FioDeviceProfile, FioJob, FioResult, OpKind, Pattern};
pub use pool::{CrashMode, PmemPool, PmemPoolBuilder, PoolStats, CACHE_LINE};

/// Errors produced by the persistent-memory simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PmemError {
    /// A pool cannot be created with zero capacity.
    ZeroCapacity,
    /// An access touched bytes outside the pool.
    OutOfBounds {
        /// Requested start offset.
        offset: usize,
        /// Requested length.
        len: usize,
        /// Pool capacity.
        capacity: usize,
    },
    /// The pool has no backing file configured.
    NoBackingFile,
    /// An I/O error while reading or writing the backing file.
    Io(String),
}

impl fmt::Display for PmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmemError::ZeroCapacity => {
                write!(f, "persistent memory pool capacity must be non-zero")
            }
            PmemError::OutOfBounds {
                offset,
                len,
                capacity,
            } => write!(
                f,
                "access of {len} bytes at offset {offset} exceeds pool capacity {capacity}"
            ),
            PmemError::NoBackingFile => write!(f, "pool has no backing file"),
            PmemError::Io(msg) => write!(f, "backing file i/o error: {msg}"),
        }
    }
}

impl Error for PmemError {}

/// Persistent write-back / fence instruction combinations supported by Romulus
/// (§V of the paper: `clwb+sfence`, `clflushopt+sfence` — the one Plinius uses —
/// and `clflush+nop`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PwbKind {
    /// `CLFLUSH` + `NOP`: the flush is strongly ordered so no fence is required.
    ClflushNop,
    /// `CLFLUSHOPT` + `SFENCE`: the default used by Plinius.
    #[default]
    ClflushOptSfence,
    /// `CLWB` + `SFENCE`: keeps the line in cache after write-back (not available on the
    /// paper's servers, modeled here for completeness).
    ClwbSfence,
}

impl fmt::Display for PwbKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PwbKind::ClflushNop => write!(f, "CLFLUSH+NOP"),
            PwbKind::ClflushOptSfence => write!(f, "CLFLUSHOPT+SFENCE"),
            PwbKind::ClwbSfence => write!(f, "CLWB+SFENCE"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let err = PmemError::OutOfBounds {
            offset: 10,
            len: 20,
            capacity: 16,
        };
        let msg = err.to_string();
        assert!(msg.contains("20 bytes"));
        assert!(msg.contains("capacity 16"));
        assert!(PmemError::ZeroCapacity.to_string().contains("non-zero"));
    }

    #[test]
    fn pwb_kind_default_matches_paper_choice() {
        assert_eq!(PwbKind::default(), PwbKind::ClflushOptSfence);
        assert_eq!(PwbKind::ClflushOptSfence.to_string(), "CLFLUSHOPT+SFENCE");
        assert_eq!(PwbKind::ClflushNop.to_string(), "CLFLUSH+NOP");
    }
}
