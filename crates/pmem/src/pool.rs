//! The persistent-memory pool simulator.
//!
//! A [`PmemPool`] models one DAX-mapped region of Intel Optane DC persistent memory the
//! way Plinius and Romulus use it: software issues byte-granular `store`s, then makes
//! them durable with cache-line write-backs (CLFLUSH / CLFLUSHOPT / CLWB) ordered by
//! SFENCE persistence fences. The simulator keeps two views of the region:
//!
//! * **media** — what is durably on the DIMM and therefore survives a crash;
//! * **cache** — dirty cache lines that have been stored but not yet written back.
//!
//! Calling [`PmemPool::crash`] models a power failure: every dirty line is, independently,
//! either lost or (because a CPU cache may evict lines at any time) prematurely persisted.
//! This is exactly the failure model a persistent transactional memory such as Romulus
//! must tolerate, and it is what the crash-injection property tests exercise.

use crate::{PmemError, PwbKind};
use parking_lot::Mutex;
use rand::Rng;
use sim_clock::{ClockHandle, CostModel, StatsHandle};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Cache-line size in bytes, the granularity of persistence on PM hardware.
pub const CACHE_LINE: usize = 64;

/// How a simulated crash treats dirty (not yet flushed) cache lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// Every dirty line is lost: the media keeps only what was explicitly flushed.
    DropUnflushed,
    /// Each dirty line is independently either lost or persisted (a CPU may evict cache
    /// lines at arbitrary times, so unflushed data *can* reach the media early). This is
    /// the adversarial model used by the crash-consistency property tests.
    ArbitraryEviction,
}

/// Statistics snapshot of a pool's activity since creation (or the last reset).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Bytes passed to [`PmemPool::write`].
    pub bytes_written: u64,
    /// Bytes returned by [`PmemPool::read`]/[`PmemPool::read_vec`].
    pub bytes_read: u64,
    /// Cache-line write-back instructions issued.
    pub flushes: u64,
    /// Persistence fences issued.
    pub fences: u64,
    /// Crashes injected.
    pub crashes: u64,
}

struct Inner {
    media: Vec<u8>,
    /// Dirty cache lines: line index -> pending contents. A `HashMap` rather than an
    /// ordered map: `remove` keeps the allocated capacity, so the steady-state
    /// write→flush cycle of the mirror path performs no heap allocation once the map
    /// has grown to the largest transaction's working set. Everything that iterates
    /// the map sorts the keys first, so behaviour stays deterministic.
    cache: HashMap<usize, [u8; CACHE_LINE]>,
    stats: PoolStats,
    backing: Option<PathBuf>,
}

/// A simulated byte-addressable persistent-memory region.
///
/// The pool is cheap to clone (it is internally reference-counted); clones observe the
/// same media and cache state, which mirrors how one DAX mapping is shared between the
/// untrusted helper and the enclave runtime in Plinius.
#[derive(Clone)]
pub struct PmemPool {
    inner: Arc<Mutex<Inner>>,
    clock: ClockHandle,
    stats: StatsHandle,
    cost: Arc<CostModel>,
    pwb: PwbKind,
}

impl std::fmt::Debug for PmemPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("PmemPool")
            .field("len", &inner.media.len())
            .field("dirty_lines", &inner.cache.len())
            .field("pwb", &self.pwb)
            .finish()
    }
}

/// Builder for [`PmemPool`] instances.
#[derive(Debug, Clone)]
pub struct PmemPoolBuilder {
    len: usize,
    clock: Option<ClockHandle>,
    stats: Option<StatsHandle>,
    cost: CostModel,
    pwb: PwbKind,
    backing: Option<PathBuf>,
}

impl PmemPoolBuilder {
    /// Starts building a pool of `len` bytes.
    pub fn new(len: usize) -> Self {
        PmemPoolBuilder {
            len,
            clock: None,
            stats: None,
            cost: CostModel::default(),
            pwb: PwbKind::ClflushOptSfence,
            backing: None,
        }
    }

    /// Uses an existing simulation clock (shared with other substrates).
    pub fn clock(mut self, clock: ClockHandle) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Uses an existing statistics registry.
    pub fn stats(mut self, stats: StatsHandle) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Sets the hardware cost model (server profile).
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Selects the persistent write-back + fence combination.
    pub fn pwb(mut self, pwb: PwbKind) -> Self {
        self.pwb = pwb;
        self
    }

    /// Backs the pool media with a file so that it survives process restarts.
    /// If the file exists its contents initialise the media.
    pub fn file_backing(mut self, path: impl AsRef<Path>) -> Self {
        self.backing = Some(path.as_ref().to_path_buf());
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::ZeroCapacity`] for an empty pool or [`PmemError::Io`] if the
    /// backing file cannot be read.
    pub fn build(self) -> Result<PmemPool, PmemError> {
        if self.len == 0 {
            return Err(PmemError::ZeroCapacity);
        }
        let mut media = vec![0u8; self.len];
        if let Some(path) = &self.backing {
            if path.exists() {
                let bytes = std::fs::read(path).map_err(|e| PmemError::Io(e.to_string()))?;
                let n = bytes.len().min(self.len);
                media[..n].copy_from_slice(&bytes[..n]);
            }
        }
        Ok(PmemPool {
            inner: Arc::new(Mutex::new(Inner {
                media,
                cache: HashMap::new(),
                stats: PoolStats::default(),
                backing: self.backing,
            })),
            clock: self.clock.unwrap_or_default(),
            stats: self.stats.unwrap_or_default(),
            cost: Arc::new(self.cost),
            pwb: self.pwb,
        })
    }
}

impl PmemPool {
    /// Creates an in-memory pool of `len` bytes with default settings.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::ZeroCapacity`] if `len` is zero.
    pub fn new(len: usize) -> Result<Self, PmemError> {
        PmemPoolBuilder::new(len).build()
    }

    /// Returns a builder for fine-grained configuration.
    pub fn builder(len: usize) -> PmemPoolBuilder {
        PmemPoolBuilder::new(len)
    }

    /// Pool capacity in bytes.
    pub fn len(&self) -> usize {
        self.inner.lock().media.len()
    }

    /// Whether the pool has zero capacity (never true for a successfully built pool).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The simulation clock this pool charges costs to.
    pub fn clock(&self) -> ClockHandle {
        Arc::clone(&self.clock)
    }

    /// The statistics registry shared with other substrates.
    pub fn stats_registry(&self) -> StatsHandle {
        Arc::clone(&self.stats)
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The persistent write-back flavour in effect.
    pub fn pwb_kind(&self) -> PwbKind {
        self.pwb
    }

    /// Stores `data` at `offset`. The stores land in the (volatile) cache view and are
    /// not durable until the affected lines are flushed.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the range does not fit in the pool.
    pub fn write(&self, offset: usize, data: &[u8]) -> Result<(), PmemError> {
        let mut inner = self.inner.lock();
        check_range(inner.media.len(), offset, data.len())?;
        inner.stats.bytes_written += data.len() as u64;
        // One cache lookup and one bulk copy per overlapped line (the mirror path
        // pushes megabytes through here every iteration; a per-byte map lookup would
        // dominate the simulated write).
        let inner = &mut *inner;
        let mut pos = 0usize;
        while pos < data.len() {
            let addr = offset + pos;
            let line = addr / CACHE_LINE;
            let line_start = line * CACHE_LINE;
            let in_line = addr - line_start;
            let take = (CACHE_LINE - in_line).min(data.len() - pos);
            // Load the line from media on first touch so untouched bytes stay intact.
            let media = &inner.media;
            let entry = inner.cache.entry(line).or_insert_with(|| {
                let mut buf = [0u8; CACHE_LINE];
                let end = (line_start + CACHE_LINE).min(media.len());
                buf[..end - line_start].copy_from_slice(&media[line_start..end]);
                buf
            });
            entry[in_line..in_line + take].copy_from_slice(&data[pos..pos + take]);
            pos += take;
        }
        self.clock
            .advance_ns(self.cost.pm_write_ns(data.len() as u64));
        self.stats
            .counter("pm.bytes_written")
            .add(data.len() as u64);
        Ok(())
    }

    /// Reads `buf.len()` bytes starting at `offset`. Reads observe the cache view (the
    /// most recent stores), exactly like CPU loads would.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the range does not fit in the pool.
    pub fn read(&self, offset: usize, buf: &mut [u8]) -> Result<(), PmemError> {
        let mut inner = self.inner.lock();
        check_range(inner.media.len(), offset, buf.len())?;
        // Line-granular: one cache lookup and one bulk copy per overlapped line.
        let mut pos = 0usize;
        while pos < buf.len() {
            let addr = offset + pos;
            let line = addr / CACHE_LINE;
            let in_line = addr % CACHE_LINE;
            let take = (CACHE_LINE - in_line).min(buf.len() - pos);
            match inner.cache.get(&line) {
                Some(cached) => {
                    buf[pos..pos + take].copy_from_slice(&cached[in_line..in_line + take])
                }
                None => buf[pos..pos + take].copy_from_slice(&inner.media[addr..addr + take]),
            }
            pos += take;
        }
        inner.stats.bytes_read += buf.len() as u64;
        self.stats.counter("pm.bytes_read").add(buf.len() as u64);
        Ok(())
    }

    /// Convenience wrapper around [`PmemPool::read`] returning a fresh vector.
    ///
    /// # Errors
    ///
    /// Same as [`PmemPool::read`].
    pub fn read_vec(&self, offset: usize, len: usize) -> Result<Vec<u8>, PmemError> {
        let mut buf = vec![0u8; len];
        self.read(offset, &mut buf)?;
        Ok(buf)
    }

    /// Issues cache-line write-backs for every line overlapping `[offset, offset+len)`,
    /// making those bytes durable on the media.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the range does not fit in the pool.
    pub fn flush(&self, offset: usize, len: usize) -> Result<(), PmemError> {
        if len == 0 {
            return Ok(());
        }
        let mut inner = self.inner.lock();
        check_range(inner.media.len(), offset, len)?;
        let first = offset / CACHE_LINE;
        let last = (offset + len - 1) / CACHE_LINE;
        let mut flushed_lines = 0u64;
        for line in first..=last {
            if let Some(contents) = inner.cache.remove(&line) {
                let start = line * CACHE_LINE;
                let end = (start + CACHE_LINE).min(inner.media.len());
                inner.media[start..end].copy_from_slice(&contents[..end - start]);
                flushed_lines += 1;
            }
        }
        inner.stats.flushes += flushed_lines;
        self.stats.counter("pm.flushes").add(flushed_lines);
        self.clock
            .advance_ns(flushed_lines * self.effective_flush_ns());
        Ok(())
    }

    /// Store + flush in one call: the persistent write-back (`PWB`) pattern the
    /// `persist<>` annotation of Romulus generates for every store.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::OutOfBounds`] if the range does not fit in the pool.
    pub fn persist(&self, offset: usize, data: &[u8]) -> Result<(), PmemError> {
        self.write(offset, data)?;
        self.flush(offset, data.len())
    }

    /// Issues a persistence fence (SFENCE), ordering previously issued write-backs.
    pub fn fence(&self) {
        let mut inner = self.inner.lock();
        inner.stats.fences += 1;
        self.stats.counter("pm.fences").incr();
        self.clock.advance_ns(self.effective_fence_ns());
    }

    /// Flushes every dirty line in the pool and fences — used on clean shutdown.
    pub fn flush_all(&self) {
        let mut inner = self.inner.lock();
        // Sorted like every other cache iteration: the lines are disjoint so order is
        // currently unobservable, but keeping the documented determinism invariant
        // protects anyone adding per-line effects later.
        let mut lines: Vec<usize> = inner.cache.keys().copied().collect();
        lines.sort_unstable();
        let media_len = inner.media.len();
        for line in lines {
            if let Some(contents) = inner.cache.remove(&line) {
                let start = line * CACHE_LINE;
                let end = (start + CACHE_LINE).min(media_len);
                inner.media[start..end].copy_from_slice(&contents[..end - start]);
                inner.stats.flushes += 1;
            }
        }
        inner.stats.fences += 1;
    }

    /// Simulates a power failure / process kill.
    ///
    /// Dirty cache lines are handled according to `mode`; the cache view is discarded
    /// afterwards, so the next reads observe exactly what survived on the media.
    pub fn crash<R: Rng>(&self, rng: &mut R, mode: CrashMode) {
        let mut inner = self.inner.lock();
        // Sorted so that the per-line eviction coin flips consume the RNG in a
        // deterministic order regardless of the hash map's internal layout.
        let mut lines: Vec<usize> = inner.cache.keys().copied().collect();
        lines.sort_unstable();
        let media_len = inner.media.len();
        for line in lines {
            let persist_anyway = match mode {
                CrashMode::DropUnflushed => false,
                CrashMode::ArbitraryEviction => rng.gen_bool(0.5),
            };
            let contents = inner.cache.remove(&line).expect("line listed above");
            if persist_anyway {
                let start = line * CACHE_LINE;
                let end = (start + CACHE_LINE).min(media_len);
                inner.media[start..end].copy_from_slice(&contents[..end - start]);
            }
        }
        inner.stats.crashes += 1;
        self.stats.counter("pm.crashes").incr();
    }

    /// Returns a copy of the durable media contents (what a post-crash reader would see
    /// before any volatile activity).
    pub fn media_snapshot(&self) -> Vec<u8> {
        self.inner.lock().media.clone()
    }

    /// Number of dirty (not yet flushed) cache lines.
    pub fn dirty_lines(&self) -> usize {
        self.inner.lock().cache.len()
    }

    /// Activity statistics since creation.
    pub fn pool_stats(&self) -> PoolStats {
        self.inner.lock().stats
    }

    /// Persists the media to the backing file, if one was configured.
    ///
    /// # Errors
    ///
    /// Returns [`PmemError::NoBackingFile`] when the pool has no backing file and
    /// [`PmemError::Io`] if writing fails.
    pub fn sync_backing_file(&self) -> Result<(), PmemError> {
        let inner = self.inner.lock();
        match &inner.backing {
            Some(path) => {
                std::fs::write(path, &inner.media).map_err(|e| PmemError::Io(e.to_string()))
            }
            None => Err(PmemError::NoBackingFile),
        }
    }

    fn effective_flush_ns(&self) -> u64 {
        match self.pwb {
            // clflush evicts the line and is the slowest variant.
            PwbKind::ClflushNop => self.cost.pm_flush_ns + self.cost.pm_flush_ns / 2,
            PwbKind::ClflushOptSfence => self.cost.pm_flush_ns,
            // clwb keeps the line in cache: cheapest write-back.
            PwbKind::ClwbSfence => (self.cost.pm_flush_ns * 3) / 4,
        }
    }

    fn effective_fence_ns(&self) -> u64 {
        match self.pwb {
            PwbKind::ClflushNop => 0, // clflush is ordered, the fence is a NOP.
            _ => self.cost.pm_fence_ns,
        }
    }
}

fn check_range(pool_len: usize, offset: usize, len: usize) -> Result<(), PmemError> {
    if offset.checked_add(len).map(|end| end <= pool_len) != Some(true) {
        return Err(PmemError::OutOfBounds {
            offset,
            len,
            capacity: pool_len,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sim_clock::SimClock;

    #[test]
    fn zero_capacity_rejected() {
        assert_eq!(PmemPool::new(0).unwrap_err(), PmemError::ZeroCapacity);
    }

    #[test]
    fn write_then_read_observes_cache_view() {
        let pool = PmemPool::new(4096).unwrap();
        pool.write(10, b"hello").unwrap();
        assert_eq!(pool.read_vec(10, 5).unwrap(), b"hello");
        // Not flushed yet: the durable media still holds zeros.
        assert_eq!(&pool.media_snapshot()[10..15], &[0u8; 5]);
    }

    #[test]
    fn flush_makes_data_durable() {
        let pool = PmemPool::new(4096).unwrap();
        pool.write(100, b"durable").unwrap();
        pool.flush(100, 7).unwrap();
        pool.fence();
        assert_eq!(&pool.media_snapshot()[100..107], b"durable");
        assert_eq!(pool.dirty_lines(), 0);
    }

    #[test]
    fn out_of_bounds_is_rejected() {
        let pool = PmemPool::new(128).unwrap();
        let err = pool.write(100, &[0u8; 64]).unwrap_err();
        assert!(matches!(err, PmemError::OutOfBounds { capacity: 128, .. }));
        assert!(pool.read_vec(129, 1).is_err());
        assert!(pool.flush(120, 64).is_err());
    }

    #[test]
    fn overflowing_range_is_rejected() {
        let pool = PmemPool::new(128).unwrap();
        assert!(pool.write(usize::MAX, b"x").is_err());
    }

    #[test]
    fn crash_drops_unflushed_data() {
        let pool = PmemPool::new(4096).unwrap();
        pool.write(0, b"committed").unwrap();
        pool.flush(0, 9).unwrap();
        pool.write(1000, b"in-flight").unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        pool.crash(&mut rng, CrashMode::DropUnflushed);
        assert_eq!(pool.read_vec(0, 9).unwrap(), b"committed");
        assert_eq!(pool.read_vec(1000, 9).unwrap(), vec![0u8; 9]);
    }

    #[test]
    fn arbitrary_eviction_persists_some_lines() {
        let pool = PmemPool::new(1 << 20).unwrap();
        // Dirty many distinct lines; with p=0.5 per line some must survive and some must drop.
        for i in 0..200 {
            pool.write(i * CACHE_LINE, &[0xAB]).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(42);
        pool.crash(&mut rng, CrashMode::ArbitraryEviction);
        let survived = (0..200)
            .filter(|i| pool.read_vec(i * CACHE_LINE, 1).unwrap()[0] == 0xAB)
            .count();
        assert!(survived > 0 && survived < 200, "survived = {survived}");
    }

    #[test]
    fn partial_line_write_preserves_neighbouring_bytes() {
        let pool = PmemPool::new(256).unwrap();
        pool.write(0, &[1u8; 64]).unwrap();
        pool.flush(0, 64).unwrap();
        // Overwrite only 4 bytes in the middle of the flushed line.
        pool.write(10, &[9u8; 4]).unwrap();
        pool.flush(10, 4).unwrap();
        let line = pool.read_vec(0, 64).unwrap();
        assert_eq!(&line[..10], &[1u8; 10]);
        assert_eq!(&line[10..14], &[9u8; 4]);
        assert_eq!(&line[14..], &[1u8; 50]);
    }

    #[test]
    fn stats_and_counters_track_activity() {
        let pool = PmemPool::new(4096).unwrap();
        pool.write(0, &[1u8; 130]).unwrap();
        pool.flush(0, 130).unwrap();
        pool.fence();
        let stats = pool.pool_stats();
        assert_eq!(stats.bytes_written, 130);
        assert_eq!(stats.flushes, 3); // 130 bytes span 3 cache lines.
        assert_eq!(stats.fences, 1);
        assert_eq!(pool.stats_registry().value("pm.flushes"), 3);
    }

    #[test]
    fn clock_advances_with_activity() {
        let clock = SimClock::new();
        let pool = PmemPool::builder(4096)
            .clock(Arc::clone(&clock))
            .cost_model(CostModel::eml_sgx_pm())
            .build()
            .unwrap();
        assert_eq!(clock.now_ns(), 0);
        pool.persist(0, &[0u8; 1024]).unwrap();
        pool.fence();
        assert!(clock.now_ns() > 0);
    }

    #[test]
    fn pwb_variants_have_distinct_costs() {
        let cost = CostModel::eml_sgx_pm();
        let mk = |pwb| {
            let clock = SimClock::new();
            let pool = PmemPool::builder(4096)
                .clock(Arc::clone(&clock))
                .cost_model(cost.clone())
                .pwb(pwb)
                .build()
                .unwrap();
            pool.persist(0, &[0u8; 512]).unwrap();
            pool.fence();
            clock.now_ns()
        };
        let clflush = mk(PwbKind::ClflushNop);
        let clflushopt = mk(PwbKind::ClflushOptSfence);
        let clwb = mk(PwbKind::ClwbSfence);
        assert!(clflush > clflushopt, "{clflush} vs {clflushopt}");
        assert!(clflushopt > clwb, "{clflushopt} vs {clwb}");
    }

    #[test]
    fn file_backing_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("plinius-pmem-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pool.pm");
        let _ = std::fs::remove_file(&path);
        {
            let pool = PmemPool::builder(1024).file_backing(&path).build().unwrap();
            pool.persist(64, b"persisted across processes").unwrap();
            pool.sync_backing_file().unwrap();
        }
        let reopened = PmemPool::builder(1024).file_backing(&path).build().unwrap();
        assert_eq!(
            reopened.read_vec(64, 26).unwrap(),
            b"persisted across processes"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sync_without_backing_file_errors() {
        let pool = PmemPool::new(64).unwrap();
        assert_eq!(
            pool.sync_backing_file().unwrap_err(),
            PmemError::NoBackingFile
        );
    }

    #[test]
    fn flush_all_persists_everything() {
        let pool = PmemPool::new(8192).unwrap();
        pool.write(0, &[7u8; 300]).unwrap();
        pool.write(4000, &[8u8; 300]).unwrap();
        pool.flush_all();
        assert_eq!(pool.dirty_lines(), 0);
        let media = pool.media_snapshot();
        assert_eq!(&media[..300], &[7u8; 300]);
        assert_eq!(&media[4000..4300], &[8u8; 300]);
    }

    #[test]
    fn debug_output_mentions_dirty_lines() {
        let pool = PmemPool::new(256).unwrap();
        pool.write(0, &[1]).unwrap();
        let dbg = format!("{pool:?}");
        assert!(dbg.contains("dirty_lines"));
    }
}
