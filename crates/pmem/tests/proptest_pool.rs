//! Property tests for the persistent-memory simulator: flushed data always survives a
//! crash, unflushed data never corrupts neighbouring flushed data, and reads always
//! observe the most recent stores.

use plinius_pmem::{CrashMode, PmemPool, CACHE_LINE};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const POOL_SIZE: usize = 64 * 1024;

#[derive(Debug, Clone)]
struct WriteOp {
    offset: usize,
    data: Vec<u8>,
    flushed: bool,
}

fn write_ops() -> impl Strategy<Value = Vec<WriteOp>> {
    proptest::collection::vec(
        (
            0usize..POOL_SIZE - 256,
            proptest::collection::vec(any::<u8>(), 1..256),
            any::<bool>(),
        )
            .prop_map(|(offset, data, flushed)| WriteOp {
                offset,
                data,
                flushed,
            }),
        1..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Reads always observe the most recent store, flushed or not.
    #[test]
    fn reads_observe_latest_stores(ops in write_ops()) {
        let pool = PmemPool::new(POOL_SIZE).unwrap();
        let mut shadow = vec![0u8; POOL_SIZE];
        for op in &ops {
            pool.write(op.offset, &op.data).unwrap();
            shadow[op.offset..op.offset + op.data.len()].copy_from_slice(&op.data);
            if op.flushed {
                pool.flush(op.offset, op.data.len()).unwrap();
            }
        }
        for op in &ops {
            let got = pool.read_vec(op.offset, op.data.len()).unwrap();
            prop_assert_eq!(&got[..], &shadow[op.offset..op.offset + op.data.len()]);
        }
    }

    /// After a crash, every byte that was flushed (and not later overwritten) is intact,
    /// regardless of the crash mode.
    #[test]
    fn flushed_data_survives_crashes(ops in write_ops(), seed in any::<u64>(), arbitrary in any::<bool>()) {
        let pool = PmemPool::new(POOL_SIZE).unwrap();
        // Shadow of what *must* be durable: only bytes whose last write was flushed.
        let mut durable: Vec<Option<u8>> = vec![None; POOL_SIZE];
        for op in &ops {
            pool.write(op.offset, &op.data).unwrap();
            if op.flushed {
                pool.flush(op.offset, op.data.len()).unwrap();
                pool.fence();
                for (i, b) in op.data.iter().enumerate() {
                    durable[op.offset + i] = Some(*b);
                }
            } else {
                // An unflushed overwrite invalidates the durability guarantee for these
                // bytes (their final value is undefined after a crash) unless the whole
                // cache line is later flushed again.
                for i in 0..op.data.len() {
                    durable[op.offset + i] = None;
                }
                // Bytes sharing a cache line with the unflushed write may be written back
                // together with it under arbitrary eviction, so drop the guarantee for
                // the touched lines entirely.
                let first = op.offset / CACHE_LINE;
                let last = (op.offset + op.data.len() - 1) / CACHE_LINE;
                for line in first..=last {
                    let end = ((line + 1) * CACHE_LINE).min(POOL_SIZE);
                    durable[line * CACHE_LINE..end].fill(None);
                }
            }
        }
        let mode = if arbitrary { CrashMode::ArbitraryEviction } else { CrashMode::DropUnflushed };
        let mut rng = StdRng::seed_from_u64(seed);
        pool.crash(&mut rng, mode);
        let media = pool.media_snapshot();
        for (addr, expected) in durable.iter().enumerate() {
            if let Some(b) = expected {
                prop_assert_eq!(media[addr], *b, "byte at {} lost after crash", addr);
            }
        }
    }

    /// persist() (write + flush) is equivalent to write() followed by flush().
    #[test]
    fn persist_equals_write_plus_flush(offset in 0usize..POOL_SIZE - 512, data in proptest::collection::vec(any::<u8>(), 1..512)) {
        let a = PmemPool::new(POOL_SIZE).unwrap();
        let b = PmemPool::new(POOL_SIZE).unwrap();
        a.persist(offset, &data).unwrap();
        b.write(offset, &data).unwrap();
        b.flush(offset, data.len()).unwrap();
        prop_assert_eq!(a.media_snapshot(), b.media_snapshot());
        prop_assert_eq!(a.dirty_lines(), 0);
    }
}
