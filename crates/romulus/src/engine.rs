//! The Romulus persistent transactional memory engine.
//!
//! Romulus [Correia et al., SPAA'18] keeps **twin copies** of the user data in PM: the
//! *main* region, where user code performs in-place modifications, and the *back* region,
//! a snapshot of the last consistent state. A volatile redo log records which ranges of
//! main were modified by the current transaction so that commit only has to copy those
//! ranges into back. The durable commit protocol uses at most four persistence fences
//! regardless of the transaction size:
//!
//! 1. persist `state = MUTATING`, fence;
//! 2. apply the user's stores to main with interposed persistent write-backs, fence;
//! 3. persist `state = COPYING`, fence, copy the logged ranges main → back with
//!    write-backs;
//! 4. fence, persist `state = IDLE`.
//!
//! Recovery inspects the persisted state word: a crash during MUTATING restores main from
//! back (the snapshot), a crash during COPYING re-copies main onto back (main is already
//! consistent), and IDLE needs no work.
//!
//! This reimplementation is what the paper calls **sgx-romulus** when instantiated with
//! [`Flavor::Sgx`]: the engine runs inside the simulated enclave, its volatile log lives
//! in enclave memory, and every PM access pays the enclave-side cost. [`Flavor::Scone`]
//! models the unmodified library running in a SCONE container, whose constrained volatile
//! log degrades large transactions (the effect visible in Fig. 6).

use crate::{Flavor, RomulusError};
use parking_lot::Mutex;
use plinius_pmem::{PmemPool, PwbKind};
use std::sync::Arc;

/// Magic number identifying an initialised Romulus pool.
const MAGIC: u64 = 0x524f_4d55_4c55_5321; // "ROMULUS!"

/// Number of persistent object roots kept in the directory. Plinius itself uses a
/// handful (the mirror model list head, the PM data matrix, the iteration
/// counter...), but the multi-tenant fleet layer carves the directory into
/// per-tenant root pairs, so the directory is sized for dozens of tenants.
pub const NUM_ROOTS: usize = 64;

/// Size of the persistent header at the start of the pool.
const HEADER_SIZE: usize = 256;

/// Byte offset of the allocator's bump pointer within the main region.
const ALLOC_META_OFFSET: usize = 0;
/// Byte offset of the root directory within the main region.
const ROOTS_OFFSET: usize = 8;
/// First byte available to user allocations within the main region: the allocator
/// bump word plus the `NUM_ROOTS` root directory (8 + 64 * 8 = 520 bytes), rounded
/// up to the allocation alignment.
pub const DATA_START: usize = 576;

/// Default alignment of persistent allocations (one cache line).
pub const ALLOC_ALIGN: usize = 64;

/// Consistency state persisted in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
enum State {
    Idle = 0,
    Mutating = 1,
    Copying = 2,
}

impl State {
    fn from_u64(v: u64) -> Result<Self, RomulusError> {
        match v {
            0 => Ok(State::Idle),
            1 => Ok(State::Mutating),
            2 => Ok(State::Copying),
            other => Err(RomulusError::Corrupted(format!(
                "invalid persisted state word {other}"
            ))),
        }
    }
}

/// A pointer into the persistent heap: an offset relative to the start of the main
/// region, valid in both twin copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PmPtr {
    offset: u64,
}

impl PmPtr {
    /// The null pointer (offset 0 is never handed out to user data).
    pub const NULL: PmPtr = PmPtr { offset: 0 };

    /// Creates a pointer from a raw main-region offset.
    pub fn from_offset(offset: u64) -> Self {
        PmPtr { offset }
    }

    /// The raw offset within the main region.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Whether this is the null pointer.
    pub fn is_null(&self) -> bool {
        self.offset == 0
    }

    /// Pointer `delta` bytes further into the allocation.
    pub fn add(&self, delta: u64) -> PmPtr {
        PmPtr {
            offset: self.offset + delta,
        }
    }
}

/// Crash-injection points used by the fault-injection tests and the robustness example.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailPoint {
    /// Crash right after the state word was set to MUTATING (no user stores applied).
    AfterMutatingState,
    /// Crash after the first `n` logged store operations of the transaction body.
    AfterStores(usize),
    /// Crash right after the state word was set to COPYING (back not yet updated).
    AfterCopyingState,
    /// Crash after copying the first `n` logged ranges into the back region.
    AfterBackCopies(usize),
    /// Crash after the first `n` [`Romulus::publish_region`] calls (direct twin
    /// writes outside any transaction) — models a power failure in the middle of a
    /// double-buffered bulk publish, before the epoch-flip transaction runs.
    AfterDirectPublishes(usize),
}

/// A volatile redo-log entry: one modified range of the main region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LogEntry {
    offset: u64,
    len: u64,
}

#[derive(Debug, Default)]
struct RedoLog {
    entries: Vec<LogEntry>,
    bytes: u64,
}

impl RedoLog {
    fn record(&mut self, offset: u64, len: u64) {
        self.entries.push(LogEntry { offset, len });
        self.bytes += len;
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.bytes = 0;
    }
}

#[derive(Debug)]
struct Layout {
    main_start: usize,
    back_start: usize,
    region_size: usize,
}

/// The Romulus engine bound to one persistent-memory pool.
#[derive(Clone)]
pub struct Romulus {
    pool: PmemPool,
    flavor: Flavor,
    layout: Arc<Layout>,
    log: Arc<Mutex<RedoLog>>,
    failpoint: Arc<Mutex<Option<FailPoint>>>,
    /// Reusable staging buffer for main→back / back→main range copies, so the commit
    /// path stops allocating a fresh vector per logged range (it grows to the largest
    /// range ever copied and stays there).
    copy_scratch: Arc<Mutex<Vec<u8>>>,
}

impl std::fmt::Debug for Romulus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Romulus")
            .field("region_size", &self.layout.region_size)
            .field("flavor", &self.flavor.name())
            .finish()
    }
}

impl Romulus {
    /// Formats (or re-opens) a Romulus pool over `pool` with twin regions of
    /// `region_size` bytes each, running under the given [`Flavor`].
    ///
    /// If the pool already contains a valid Romulus header the existing contents are
    /// recovered (running crash recovery if needed); otherwise the pool is initialised
    /// from scratch.
    ///
    /// # Errors
    ///
    /// Returns [`RomulusError::PoolTooSmall`] if the pool cannot hold the header plus two
    /// regions of the requested size, or a [`RomulusError::Pmem`]/[`RomulusError::Corrupted`]
    /// error if the header is unreadable.
    pub fn create(
        pool: PmemPool,
        region_size: usize,
        flavor: Flavor,
    ) -> Result<Self, RomulusError> {
        let needed = HEADER_SIZE + 2 * region_size;
        if pool.len() < needed {
            return Err(RomulusError::PoolTooSmall {
                capacity: pool.len(),
                needed,
            });
        }
        if region_size < DATA_START + ALLOC_ALIGN {
            return Err(RomulusError::PoolTooSmall {
                capacity: region_size,
                needed: DATA_START + ALLOC_ALIGN,
            });
        }
        let layout = Arc::new(Layout {
            main_start: HEADER_SIZE,
            back_start: HEADER_SIZE + region_size,
            region_size,
        });
        let engine = Romulus {
            pool,
            flavor,
            layout,
            log: Arc::new(Mutex::new(RedoLog::default())),
            failpoint: Arc::new(Mutex::new(None)),
            copy_scratch: Arc::new(Mutex::new(Vec::new())),
        };
        // The volatile log lives in enclave memory for the SGX/SCONE flavours.
        engine.flavor.register_log_memory();
        let magic = engine.read_header_u64(0)?;
        if magic == MAGIC {
            engine.recover()?;
        } else {
            engine.format()?;
        }
        Ok(engine)
    }

    /// The flavour (native / SGX / SCONE) this engine runs under.
    pub fn flavor(&self) -> &Flavor {
        &self.flavor
    }

    /// The underlying persistent-memory pool.
    pub fn pool(&self) -> &PmemPool {
        &self.pool
    }

    /// Size of each twin region in bytes.
    pub fn region_size(&self) -> usize {
        self.layout.region_size
    }

    /// Bytes still available for allocation in the persistent heap.
    pub fn free_bytes(&self) -> Result<u64, RomulusError> {
        let next = self.read_main_u64(ALLOC_META_OFFSET as u64)?;
        Ok(self.layout.region_size as u64 - next)
    }

    /// Arms a crash-injection point: the next transaction will stop at that point and
    /// return [`RomulusError::InjectedCrash`], leaving the pool exactly as a power
    /// failure at that instant would. Used by the fault-injection tests.
    pub fn inject_failure(&self, point: FailPoint) {
        *self.failpoint.lock() = Some(point);
    }

    // ------------------------------------------------------------------ formatting

    fn format(&self) -> Result<(), RomulusError> {
        // Zero the allocator metadata and roots in both regions, then publish the header.
        let zero = vec![0u8; DATA_START];
        self.pool.persist(self.layout.main_start, &zero)?;
        self.pool.persist(self.layout.back_start, &zero)?;
        // Bump pointer starts at DATA_START.
        self.write_main_u64_raw(ALLOC_META_OFFSET as u64, DATA_START as u64)?;
        self.copy_main_to_back(ALLOC_META_OFFSET as u64, 8)?;
        self.write_header_u64(8, State::Idle as u64)?;
        self.write_header_u64(16, self.layout.region_size as u64)?;
        self.write_header_u64(0, MAGIC)?;
        self.pool.fence();
        Ok(())
    }

    // ------------------------------------------------------------------ recovery

    /// Runs the Romulus recovery procedure. Called automatically by [`Romulus::create`];
    /// exposed so that crash tests can re-run it explicitly after injecting a failure.
    ///
    /// # Errors
    ///
    /// Returns [`RomulusError::Corrupted`] if the persisted state word is invalid.
    pub fn recover(&self) -> Result<(), RomulusError> {
        let persisted_size = self.read_header_u64(16)?;
        if persisted_size != self.layout.region_size as u64 {
            return Err(RomulusError::Corrupted(format!(
                "region size mismatch: header says {persisted_size}, caller says {}",
                self.layout.region_size
            )));
        }
        let state = State::from_u64(self.read_header_u64(8)?)?;
        match state {
            State::Idle => {}
            State::Mutating => {
                // main may be partially modified: restore the snapshot from back.
                self.copy_back_to_main_full()?;
            }
            State::Copying => {
                // main is consistent; finish propagating it into back.
                self.copy_main_to_back_full()?;
            }
        }
        self.write_header_u64(8, State::Idle as u64)?;
        self.pool.fence();
        self.log.lock().clear();
        Ok(())
    }

    // ------------------------------------------------------------------ transactions

    /// Runs `body` as one durable transaction.
    ///
    /// All stores performed through the [`Tx`] handle are made durable atomically: either
    /// every store survives a crash or none does.
    ///
    /// # Errors
    ///
    /// Propagates errors from the body; returns [`RomulusError::InjectedCrash`] if a
    /// crash-injection point was armed with [`Romulus::inject_failure`].
    pub fn transaction<R>(
        &self,
        body: impl FnOnce(&mut Tx<'_>) -> Result<R, RomulusError>,
    ) -> Result<R, RomulusError> {
        let failpoint = {
            let mut armed = self.failpoint.lock();
            // Direct-publish crash points belong to `publish_region`, not to
            // transactions: leave them armed for the next publish instead of
            // consuming them here.
            match armed.take() {
                Some(FailPoint::AfterDirectPublishes(n)) => {
                    *armed = Some(FailPoint::AfterDirectPublishes(n));
                    None
                }
                other => other,
            }
        };
        self.log.lock().clear();
        // Fence #1: publish MUTATING before any user store reaches main.
        self.write_header_u64(8, State::Mutating as u64)?;
        self.pool.fence();
        self.flavor.charge_fence();
        if failpoint == Some(FailPoint::AfterMutatingState) {
            return Err(RomulusError::InjectedCrash);
        }
        let mut tx = Tx {
            engine: self,
            stores: 0,
            crash_after_stores: match failpoint {
                Some(FailPoint::AfterStores(n)) => Some(n),
                _ => None,
            },
            crashed: false,
        };
        let result = body(&mut tx);
        let crashed_in_body = tx.crashed;
        match result {
            Ok(value) => {
                if crashed_in_body {
                    return Err(RomulusError::InjectedCrash);
                }
                self.commit(failpoint)?;
                Ok(value)
            }
            Err(err) => {
                if crashed_in_body || matches!(err, RomulusError::InjectedCrash) {
                    // Leave the pool as the crash left it; do not roll back volatile-ly.
                    return Err(RomulusError::InjectedCrash);
                }
                // Logical abort: restore main from back (the snapshot is intact) and
                // return to IDLE.
                self.copy_back_to_main_full()?;
                self.write_header_u64(8, State::Idle as u64)?;
                self.pool.fence();
                self.log.lock().clear();
                Err(err)
            }
        }
    }

    fn commit(&self, failpoint: Option<FailPoint>) -> Result<(), RomulusError> {
        // Fence #2: all user stores are durable in main before we switch to COPYING.
        self.pool.fence();
        self.flavor.charge_fence();
        self.write_header_u64(8, State::Copying as u64)?;
        self.pool.fence();
        self.flavor.charge_fence();
        if failpoint == Some(FailPoint::AfterCopyingState) {
            return Err(RomulusError::InjectedCrash);
        }
        // Copy only the logged ranges into back. The log is iterated under its lock
        // (the copies touch only the pool, never the log) so the commit path does not
        // clone the entry list.
        let crash_after_copies = match failpoint {
            Some(FailPoint::AfterBackCopies(n)) => Some(n),
            _ => None,
        };
        let log = self.log.lock();
        for (i, entry) in log.entries.iter().enumerate() {
            if crash_after_copies == Some(i) {
                return Err(RomulusError::InjectedCrash);
            }
            self.copy_main_to_back(entry.offset, entry.len as usize)?;
        }
        drop(log);
        // Fence #4: back is consistent; return to IDLE.
        self.pool.fence();
        self.flavor.charge_fence();
        self.write_header_u64(8, State::Idle as u64)?;
        self.pool.fence();
        self.log.lock().clear();
        Ok(())
    }

    // ------------------------------------------------------------------ reads (outside tx)

    /// Reads `len` bytes at `ptr` from the consistent main region.
    ///
    /// # Errors
    ///
    /// Returns [`RomulusError::OutOfRegion`] if the range leaves the region.
    pub fn read_bytes(&self, ptr: PmPtr, len: usize) -> Result<Vec<u8>, RomulusError> {
        let mut buf = vec![0u8; len];
        self.read_bytes_into(ptr, &mut buf)?;
        Ok(buf)
    }

    /// Reads `buf.len()` bytes at `ptr` from the consistent main region into a
    /// caller-provided buffer — the allocation-free sibling of [`Romulus::read_bytes`]
    /// used by the mirror-in arena.
    ///
    /// # Errors
    ///
    /// Returns [`RomulusError::OutOfRegion`] if the range leaves the region.
    pub fn read_bytes_into(&self, ptr: PmPtr, buf: &mut [u8]) -> Result<(), RomulusError> {
        self.check_range(ptr.offset(), buf.len() as u64)?;
        self.flavor.charge_pm_read(buf.len() as u64);
        self.pool
            .read(self.layout.main_start + ptr.offset() as usize, buf)?;
        Ok(())
    }

    /// Reads a `u64` stored at `ptr`.
    ///
    /// # Errors
    ///
    /// Returns [`RomulusError::OutOfRegion`] if the read leaves the region.
    pub fn read_u64(&self, ptr: PmPtr) -> Result<u64, RomulusError> {
        let mut bytes = [0u8; 8];
        self.read_bytes_into(ptr, &mut bytes)?;
        Ok(u64::from_le_bytes(bytes))
    }

    // ------------------------------------------------------------- direct publishes

    /// Persists `data` at `ptr` in **both** twin regions, outside any transaction and
    /// without touching the redo log — the bulk-write half of a double-buffered
    /// publish protocol.
    ///
    /// # Consistency contract
    ///
    /// The written range must be *unreachable* from any committed pointer until a
    /// subsequent **transaction** publishes a pointer/epoch referring to it (the
    /// "flip"). Under that discipline every crash is safe:
    ///
    /// * a crash during the publish leaves torn bytes only in a range nothing points
    ///   to — the previously committed state is untouched in both regions;
    /// * because main and back receive identical bytes, the full-region
    ///   back→main/main→back copies of Romulus recovery (and of a logical abort)
    ///   cannot resurrect stale data into a published range.
    ///
    /// Compared to streaming the same bytes through [`Tx::write_bytes`], this skips
    /// the per-store redo-log bookkeeping and the read-back main→back copy at commit
    /// while still paying the twin write (Romulus' inherent 2× write amplification).
    ///
    /// May not be called from inside a transaction body.
    ///
    /// # Errors
    ///
    /// Returns [`RomulusError::OutOfRegion`] if the range leaves the region, and
    /// [`RomulusError::InjectedCrash`] once an armed
    /// [`FailPoint::AfterDirectPublishes`] triggers.
    pub fn publish_region(&self, ptr: PmPtr, data: &[u8]) -> Result<(), RomulusError> {
        {
            let mut armed = self.failpoint.lock();
            if let Some(FailPoint::AfterDirectPublishes(n)) = *armed {
                if n == 0 {
                    armed.take();
                    return Err(RomulusError::InjectedCrash);
                }
                *armed = Some(FailPoint::AfterDirectPublishes(n - 1));
            }
        }
        self.check_range(ptr.offset(), data.len() as u64)?;
        self.flavor.charge_pm_write(data.len() as u64);
        self.pool
            .persist(self.layout.main_start + ptr.offset() as usize, data)?;
        self.pool
            .persist(self.layout.back_start + ptr.offset() as usize, data)?;
        Ok(())
    }

    /// Reads the persistent object root at `index`.
    ///
    /// # Errors
    ///
    /// Returns [`RomulusError::InvalidRoot`] if `index >= NUM_ROOTS`.
    pub fn root(&self, index: usize) -> Result<PmPtr, RomulusError> {
        if index >= NUM_ROOTS {
            return Err(RomulusError::InvalidRoot(index));
        }
        let off = self.read_main_u64((ROOTS_OFFSET + index * 8) as u64)?;
        Ok(PmPtr::from_offset(off))
    }

    // ------------------------------------------------------------------ low-level helpers

    fn check_range(&self, offset: u64, len: u64) -> Result<(), RomulusError> {
        if offset
            .checked_add(len)
            .map(|end| end <= self.layout.region_size as u64)
            != Some(true)
        {
            return Err(RomulusError::OutOfRegion {
                offset,
                len,
                region_size: self.layout.region_size,
            });
        }
        Ok(())
    }

    fn read_header_u64(&self, offset: usize) -> Result<u64, RomulusError> {
        let mut bytes = [0u8; 8];
        self.pool.read(offset, &mut bytes)?;
        Ok(u64::from_le_bytes(bytes))
    }

    fn write_header_u64(&self, offset: usize, value: u64) -> Result<(), RomulusError> {
        self.pool.persist(offset, &value.to_le_bytes())?;
        Ok(())
    }

    fn read_main_u64(&self, offset: u64) -> Result<u64, RomulusError> {
        let mut bytes = [0u8; 8];
        self.pool
            .read(self.layout.main_start + offset as usize, &mut bytes)?;
        Ok(u64::from_le_bytes(bytes))
    }

    /// Writes to main with an interposed persistent write-back, without logging
    /// (used during formatting only).
    fn write_main_u64_raw(&self, offset: u64, value: u64) -> Result<(), RomulusError> {
        self.pool.persist(
            self.layout.main_start + offset as usize,
            &value.to_le_bytes(),
        )?;
        Ok(())
    }

    fn copy_main_to_back(&self, offset: u64, len: usize) -> Result<(), RomulusError> {
        let mut scratch = self.copy_scratch.lock();
        if scratch.len() < len {
            scratch.resize(len, 0);
        }
        self.pool.read(
            self.layout.main_start + offset as usize,
            &mut scratch[..len],
        )?;
        self.pool
            .persist(self.layout.back_start + offset as usize, &scratch[..len])?;
        Ok(())
    }

    fn copy_main_to_back_full(&self) -> Result<(), RomulusError> {
        self.copy_main_to_back(0, self.layout.region_size)
    }

    fn copy_back_to_main_full(&self) -> Result<(), RomulusError> {
        let data = self
            .pool
            .read_vec(self.layout.back_start, self.layout.region_size)?;
        self.pool.persist(self.layout.main_start, &data)?;
        Ok(())
    }
}

/// Handle passed to a transaction body; every mutation goes through it so the engine can
/// interpose persistent write-backs and record the redo log.
pub struct Tx<'a> {
    engine: &'a Romulus,
    stores: usize,
    crash_after_stores: Option<usize>,
    crashed: bool,
}

impl<'a> Tx<'a> {
    /// Allocates `size` bytes in the persistent heap (the `PMalloc` of Algorithm 3),
    /// returning a pointer valid across crashes. Allocations are cache-line aligned.
    ///
    /// # Errors
    ///
    /// Returns [`RomulusError::OutOfPersistentMemory`] when the heap is exhausted.
    pub fn alloc(&mut self, size: usize) -> Result<PmPtr, RomulusError> {
        let next = self.engine.read_main_u64(ALLOC_META_OFFSET as u64)?;
        let aligned = next.div_ceil(ALLOC_ALIGN as u64) * ALLOC_ALIGN as u64;
        let end = aligned + size as u64;
        if end > self.engine.layout.region_size as u64 {
            return Err(RomulusError::OutOfPersistentMemory {
                requested: size,
                available: self.engine.layout.region_size as u64
                    - aligned.min(self.engine.layout.region_size as u64),
            });
        }
        self.write_u64(PmPtr::from_offset(ALLOC_META_OFFSET as u64), end)?;
        Ok(PmPtr::from_offset(aligned))
    }

    /// Marks a previously allocated object as free.
    ///
    /// The persistent allocator is a bump allocator (sufficient for Plinius' allocation
    /// pattern, which allocates the mirror model once and reuses it across iterations),
    /// so freeing only records statistics; it does not make the space reusable.
    pub fn free(&mut self, _ptr: PmPtr) {
        self.engine
            .pool
            .stats_registry()
            .counter("romulus.frees")
            .incr();
    }

    /// Stores `data` at `ptr`, with store interposition (write-back + redo-log entry).
    ///
    /// # Errors
    ///
    /// Returns [`RomulusError::OutOfRegion`] if the store leaves the region, or
    /// [`RomulusError::InjectedCrash`] once an armed crash point triggers.
    pub fn write_bytes(&mut self, ptr: PmPtr, data: &[u8]) -> Result<(), RomulusError> {
        if self.crashed {
            return Err(RomulusError::InjectedCrash);
        }
        self.engine.check_range(ptr.offset(), data.len() as u64)?;
        if let Some(limit) = self.crash_after_stores {
            if self.stores >= limit {
                self.crashed = true;
                return Err(RomulusError::InjectedCrash);
            }
        }
        let abs = self.engine.layout.main_start + ptr.offset() as usize;
        self.engine.pool.persist(abs, data)?;
        self.engine.flavor.charge_pm_write(data.len() as u64);
        let mut log = self.engine.log.lock();
        log.record(ptr.offset(), data.len() as u64);
        self.engine.flavor.charge_log_entry(log.entries.len());
        self.stores += 1;
        Ok(())
    }

    /// Stores a `u64` at `ptr`.
    ///
    /// # Errors
    ///
    /// Same as [`Tx::write_bytes`].
    pub fn write_u64(&mut self, ptr: PmPtr, value: u64) -> Result<(), RomulusError> {
        self.write_bytes(ptr, &value.to_le_bytes())
    }

    /// Reads `len` bytes at `ptr` (observing stores made earlier in this transaction).
    ///
    /// # Errors
    ///
    /// Returns [`RomulusError::OutOfRegion`] if the read leaves the region.
    pub fn read_bytes(&self, ptr: PmPtr, len: usize) -> Result<Vec<u8>, RomulusError> {
        self.engine.check_range(ptr.offset(), len as u64)?;
        self.engine.flavor.charge_pm_read(len as u64);
        Ok(self
            .engine
            .pool
            .read_vec(self.engine.layout.main_start + ptr.offset() as usize, len)?)
    }

    /// Reads a `u64` at `ptr`.
    ///
    /// # Errors
    ///
    /// Same as [`Tx::read_bytes`].
    pub fn read_u64(&self, ptr: PmPtr) -> Result<u64, RomulusError> {
        self.engine.read_u64(ptr)
    }

    /// Publishes `ptr` as persistent object root `index`.
    ///
    /// # Errors
    ///
    /// Returns [`RomulusError::InvalidRoot`] if `index >= NUM_ROOTS`.
    pub fn set_root(&mut self, index: usize, ptr: PmPtr) -> Result<(), RomulusError> {
        if index >= NUM_ROOTS {
            return Err(RomulusError::InvalidRoot(index));
        }
        self.write_u64(
            PmPtr::from_offset((ROOTS_OFFSET + index * 8) as u64),
            ptr.offset(),
        )
    }

    /// Reads persistent object root `index`.
    ///
    /// # Errors
    ///
    /// Returns [`RomulusError::InvalidRoot`] if `index >= NUM_ROOTS`.
    pub fn root(&self, index: usize) -> Result<PmPtr, RomulusError> {
        if index >= NUM_ROOTS {
            return Err(RomulusError::InvalidRoot(index));
        }
        let off = self.read_u64(PmPtr::from_offset((ROOTS_OFFSET + index * 8) as u64))?;
        Ok(PmPtr::from_offset(off))
    }

    /// Number of interposed stores performed so far in this transaction.
    pub fn store_count(&self) -> usize {
        self.stores
    }
}

/// Convenience: the default PWB/fence flavour Plinius runs Romulus with.
pub fn default_pwb() -> PwbKind {
    PwbKind::ClflushOptSfence
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine(region: usize) -> Romulus {
        let pool = PmemPool::new(HEADER_SIZE + 2 * region).unwrap();
        Romulus::create(pool, region, Flavor::Native).unwrap()
    }

    #[test]
    fn pool_too_small_is_rejected() {
        let pool = PmemPool::new(512).unwrap();
        assert!(matches!(
            Romulus::create(pool, 4096, Flavor::Native).unwrap_err(),
            RomulusError::PoolTooSmall { .. }
        ));
    }

    #[test]
    fn committed_transaction_is_readable() {
        let rom = engine(16 * 1024);
        let ptr = rom
            .transaction(|tx| {
                let p = tx.alloc(64)?;
                tx.write_bytes(p, b"persisted payload")?;
                tx.set_root(0, p)?;
                Ok(p)
            })
            .unwrap();
        assert_eq!(rom.root(0).unwrap(), ptr);
        assert_eq!(rom.read_bytes(ptr, 17).unwrap(), b"persisted payload");
    }

    #[test]
    fn read_bytes_into_matches_read_bytes() {
        let rom = engine(16 * 1024);
        let ptr = rom
            .transaction(|tx| {
                let p = tx.alloc(64)?;
                tx.write_bytes(p, b"zero-copy mirror-in payload")?;
                Ok(p)
            })
            .unwrap();
        let vec_read = rom.read_bytes(ptr, 27).unwrap();
        let mut buf = [0u8; 27];
        rom.read_bytes_into(ptr, &mut buf).unwrap();
        assert_eq!(vec_read, buf);
        assert_eq!(&buf, b"zero-copy mirror-in payload");
        // Out-of-region reads are rejected the same way.
        let mut big = vec![0u8; 32 * 1024];
        assert!(matches!(
            rom.read_bytes_into(ptr, &mut big).unwrap_err(),
            RomulusError::OutOfRegion { .. }
        ));
    }

    #[test]
    fn allocations_are_aligned_and_disjoint() {
        let rom = engine(16 * 1024);
        rom.transaction(|tx| {
            let a = tx.alloc(10)?;
            let b = tx.alloc(100)?;
            let c = tx.alloc(1)?;
            assert_eq!(a.offset() % ALLOC_ALIGN as u64, 0);
            assert_eq!(b.offset() % ALLOC_ALIGN as u64, 0);
            assert_eq!(c.offset() % ALLOC_ALIGN as u64, 0);
            assert!(b.offset() >= a.offset() + 10);
            assert!(c.offset() >= b.offset() + 100);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn out_of_persistent_memory_is_reported() {
        let rom = engine(4096);
        let err = rom
            .transaction(|tx| {
                tx.alloc(1 << 20)?;
                Ok(())
            })
            .unwrap_err();
        assert!(matches!(err, RomulusError::OutOfPersistentMemory { .. }));
    }

    #[test]
    fn aborted_transaction_rolls_back() {
        let rom = engine(16 * 1024);
        rom.transaction(|tx| {
            let p = tx.alloc(32)?;
            tx.write_bytes(p, b"keep me")?;
            tx.set_root(0, p)?;
            Ok(())
        })
        .unwrap();
        let before = rom.read_bytes(rom.root(0).unwrap(), 7).unwrap();
        let err = rom.transaction(|tx| -> Result<(), RomulusError> {
            let p = tx.root(0)?;
            tx.write_bytes(p, b"discard")?;
            Err(RomulusError::Corrupted("user abort".into()))
        });
        assert!(err.is_err());
        assert_eq!(rom.read_bytes(rom.root(0).unwrap(), 7).unwrap(), before);
    }

    #[test]
    fn reopening_pool_preserves_data() {
        let pool = PmemPool::new(HEADER_SIZE + 2 * 8192).unwrap();
        {
            let rom = Romulus::create(pool.clone(), 8192, Flavor::Native).unwrap();
            rom.transaction(|tx| {
                let p = tx.alloc(16)?;
                tx.write_u64(p, 0xDEADBEEF)?;
                tx.set_root(1, p)?;
                Ok(())
            })
            .unwrap();
        }
        let rom2 = Romulus::create(pool, 8192, Flavor::Native).unwrap();
        let p = rom2.root(1).unwrap();
        assert_eq!(rom2.read_u64(p).unwrap(), 0xDEADBEEF);
    }

    #[test]
    fn region_size_mismatch_detected_on_reopen() {
        let pool = PmemPool::new(HEADER_SIZE + 2 * 16384).unwrap();
        Romulus::create(pool.clone(), 8192, Flavor::Native).unwrap();
        assert!(matches!(
            Romulus::create(pool, 7000, Flavor::Native).unwrap_err(),
            RomulusError::Corrupted(_)
        ));
    }

    #[test]
    fn crash_before_any_store_recovers_to_previous_state() {
        let rom = engine(16 * 1024);
        rom.transaction(|tx| {
            let p = tx.alloc(8)?;
            tx.write_u64(p, 1)?;
            tx.set_root(0, p)?;
            Ok(())
        })
        .unwrap();
        rom.inject_failure(FailPoint::AfterMutatingState);
        let err = rom.transaction(|tx| {
            let p = tx.root(0)?;
            tx.write_u64(p, 2)
        });
        assert_eq!(err.unwrap_err(), RomulusError::InjectedCrash);
        let mut rng = StdRng::seed_from_u64(3);
        rom.pool()
            .crash(&mut rng, plinius_pmem::CrashMode::DropUnflushed);
        rom.recover().unwrap();
        assert_eq!(rom.read_u64(rom.root(0).unwrap()).unwrap(), 1);
    }

    #[test]
    fn crash_mid_stores_recovers_old_values() {
        let rom = engine(16 * 1024);
        let ptrs = rom
            .transaction(|tx| {
                let mut ptrs = Vec::new();
                for i in 0..8u64 {
                    let p = tx.alloc(8)?;
                    tx.write_u64(p, i)?;
                    ptrs.push(p);
                }
                tx.set_root(0, ptrs[0])?;
                Ok(ptrs)
            })
            .unwrap();
        rom.inject_failure(FailPoint::AfterStores(3));
        let err = rom.transaction(|tx| {
            for p in &ptrs {
                tx.write_u64(*p, 999)?;
            }
            Ok(())
        });
        assert_eq!(err.unwrap_err(), RomulusError::InjectedCrash);
        let mut rng = StdRng::seed_from_u64(4);
        rom.pool()
            .crash(&mut rng, plinius_pmem::CrashMode::ArbitraryEviction);
        rom.recover().unwrap();
        for (i, p) in ptrs.iter().enumerate() {
            assert_eq!(rom.read_u64(*p).unwrap(), i as u64, "ptr {i}");
        }
    }

    #[test]
    fn crash_during_back_copy_keeps_new_values() {
        let rom = engine(16 * 1024);
        let p = rom
            .transaction(|tx| {
                let p = tx.alloc(8)?;
                tx.write_u64(p, 7)?;
                tx.set_root(0, p)?;
                Ok(p)
            })
            .unwrap();
        // Crash after the COPYING state was persisted: main already holds the new value,
        // so recovery must finish the copy and keep it.
        rom.inject_failure(FailPoint::AfterCopyingState);
        let err = rom.transaction(|tx| tx.write_u64(p, 8));
        assert_eq!(err.unwrap_err(), RomulusError::InjectedCrash);
        let mut rng = StdRng::seed_from_u64(5);
        rom.pool()
            .crash(&mut rng, plinius_pmem::CrashMode::DropUnflushed);
        rom.recover().unwrap();
        assert_eq!(rom.read_u64(p).unwrap(), 8);
    }

    #[test]
    fn publish_region_survives_every_recovery_path() {
        let rom = engine(16 * 1024);
        // Commit a pointer to an allocation, then publish fresh bytes into a second,
        // not-yet-referenced allocation (the double-buffer pattern).
        let (committed, staged) = rom
            .transaction(|tx| {
                let a = tx.alloc(32)?;
                tx.write_bytes(a, b"epoch-0 payload")?;
                tx.set_root(0, a)?;
                let b = tx.alloc(32)?;
                Ok((a, b))
            })
            .unwrap();
        rom.publish_region(staged, b"epoch-1 payload").unwrap();
        // The direct write is durable and readable in main immediately.
        assert_eq!(rom.read_bytes(staged, 15).unwrap(), b"epoch-1 payload");
        // A later *aborted* transaction restores main from back wholesale; the
        // published range must not revert (main and back hold identical bytes).
        let err = rom.transaction(|tx| -> Result<(), RomulusError> {
            tx.write_bytes(committed, b"discard")?;
            Err(RomulusError::Corrupted("user abort".into()))
        });
        assert!(err.is_err());
        assert_eq!(rom.read_bytes(staged, 15).unwrap(), b"epoch-1 payload");
        assert_eq!(rom.read_bytes(committed, 15).unwrap(), b"epoch-0 payload");
        // A crash in MUTATING (back→main recovery) must not revert it either.
        rom.inject_failure(FailPoint::AfterStores(0));
        let err = rom.transaction(|tx| tx.write_bytes(committed, b"also discarded"));
        assert_eq!(err.unwrap_err(), RomulusError::InjectedCrash);
        let mut rng = StdRng::seed_from_u64(77);
        rom.pool()
            .crash(&mut rng, plinius_pmem::CrashMode::DropUnflushed);
        rom.recover().unwrap();
        assert_eq!(rom.read_bytes(staged, 15).unwrap(), b"epoch-1 payload");
        assert_eq!(rom.read_bytes(committed, 15).unwrap(), b"epoch-0 payload");
    }

    #[test]
    fn publish_region_rejects_out_of_region_ranges() {
        let rom = engine(8192);
        assert!(matches!(
            rom.publish_region(PmPtr::from_offset(8190), &[0u8; 16])
                .unwrap_err(),
            RomulusError::OutOfRegion { .. }
        ));
    }

    #[test]
    fn direct_publish_failpoint_fires_after_n_publishes() {
        let rom = engine(16 * 1024);
        let ptr = rom
            .transaction(|tx| {
                let p = tx.alloc(256)?;
                tx.set_root(0, p)?;
                Ok(p)
            })
            .unwrap();
        rom.inject_failure(FailPoint::AfterDirectPublishes(2));
        // The armed direct-publish crash point must survive an interposed
        // transaction (it belongs to publish_region, not to transactions).
        rom.transaction(|tx| tx.write_u64(ptr, 9)).unwrap();
        assert!(rom.publish_region(ptr.add(64), b"one").is_ok());
        assert!(rom.publish_region(ptr.add(128), b"two").is_ok());
        assert_eq!(
            rom.publish_region(ptr.add(192), b"three").unwrap_err(),
            RomulusError::InjectedCrash
        );
        // Disarmed after firing.
        assert!(rom.publish_region(ptr.add(192), b"three").is_ok());
    }

    #[test]
    fn invalid_root_index_is_rejected() {
        let rom = engine(8192);
        assert!(matches!(
            rom.root(NUM_ROOTS).unwrap_err(),
            RomulusError::InvalidRoot(_)
        ));
        let err = rom.transaction(|tx| tx.set_root(NUM_ROOTS, PmPtr::NULL));
        assert!(matches!(err.unwrap_err(), RomulusError::InvalidRoot(_)));
    }

    #[test]
    fn out_of_region_access_is_rejected() {
        let rom = engine(8192);
        let err = rom.transaction(|tx| tx.write_bytes(PmPtr::from_offset(8190), &[0u8; 16]));
        assert!(matches!(err.unwrap_err(), RomulusError::OutOfRegion { .. }));
        assert!(rom.read_bytes(PmPtr::from_offset(9000), 1).is_err());
    }

    #[test]
    fn pm_ptr_helpers() {
        assert!(PmPtr::NULL.is_null());
        let p = PmPtr::from_offset(100);
        assert!(!p.is_null());
        assert_eq!(p.add(28).offset(), 128);
    }

    #[test]
    fn free_bytes_decreases_with_allocations() {
        let rom = engine(8192);
        let before = rom.free_bytes().unwrap();
        rom.transaction(|tx| {
            tx.alloc(1024)?;
            Ok(())
        })
        .unwrap();
        let after = rom.free_bytes().unwrap();
        assert!(after < before);
        assert!(before - after >= 1024);
    }

    #[test]
    fn transaction_uses_four_fences_or_fewer_overhead() {
        // Romulus' selling point: a bounded number of fences per transaction regardless
        // of transaction size (plus the per-store write-backs).
        let rom = engine(64 * 1024);
        let fences_before = rom.pool().pool_stats().fences;
        rom.transaction(|tx| {
            let p = tx.alloc(8 * 512)?;
            for i in 0..512u64 {
                tx.write_u64(p.add(i * 8), i)?;
            }
            Ok(())
        })
        .unwrap();
        let fences_used = rom.pool().pool_stats().fences - fences_before;
        assert!(fences_used <= 5, "used {fences_used} fences");
    }
}
