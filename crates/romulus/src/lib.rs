//! # plinius-romulus
//!
//! A from-scratch Rust reimplementation of **Romulus**, the persistent transactional
//! memory library (Correia, Felber, Ramalhete — SPAA'18) that Plinius builds its
//! mirroring mechanism on. The engine keeps twin copies of the user data in persistent
//! memory (*main* and *back*), tracks in-flight modifications in a volatile redo log and
//! commits with a bounded number of persistence fences; see [`engine`] for the protocol.
//!
//! Three deployment *flavours* reproduce the systems compared in Fig. 6 of the paper:
//!
//! * [`Flavor::Native`] — Romulus running outside any enclave;
//! * [`Flavor::Sgx`] — **sgx-romulus**: the library manually ported to run inside an SGX
//!   enclave (this is what Plinius uses);
//! * [`Flavor::Scone`] — the unmodified library inside a SCONE container, whose
//!   constrained volatile log degrades large transactions.
//!
//! # Example
//!
//! ```
//! use plinius_pmem::PmemPool;
//! use plinius_romulus::{Flavor, Romulus};
//!
//! let pool = PmemPool::new(64 * 1024)?;
//! let rom = Romulus::create(pool, 16 * 1024, Flavor::Native)?;
//! let ptr = rom.transaction(|tx| {
//!     let p = tx.alloc(8)?;
//!     tx.write_u64(p, 42)?;
//!     tx.set_root(0, p)?;
//!     Ok(p)
//! })?;
//! assert_eq!(rom.read_u64(ptr)?, 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use plinius_pmem::PmemError;
use plinius_sgx::Enclave;
use std::error::Error;
use std::fmt;

pub mod engine;
pub mod sps;

pub use engine::{FailPoint, PmPtr, Romulus, Tx, ALLOC_ALIGN, DATA_START, NUM_ROOTS};
pub use sps::{SpsConfig, SpsResult};

/// Errors produced by the Romulus engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RomulusError {
    /// The persistent-memory pool is too small for the requested twin regions.
    PoolTooSmall {
        /// Pool capacity in bytes.
        capacity: usize,
        /// Bytes needed for header + 2 regions.
        needed: usize,
    },
    /// An access fell outside the persistent region.
    OutOfRegion {
        /// Offset of the access within the region.
        offset: u64,
        /// Length of the access.
        len: u64,
        /// Size of each twin region.
        region_size: usize,
    },
    /// The persistent heap is exhausted.
    OutOfPersistentMemory {
        /// Bytes requested.
        requested: usize,
        /// Bytes still available.
        available: u64,
    },
    /// A root-directory index was out of range.
    InvalidRoot(usize),
    /// The pool header or persisted metadata is inconsistent.
    Corrupted(String),
    /// An armed crash-injection point fired (see [`Romulus::inject_failure`]).
    InjectedCrash,
    /// An error bubbled up from the persistent-memory simulator.
    Pmem(PmemError),
}

impl fmt::Display for RomulusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RomulusError::PoolTooSmall { capacity, needed } => write!(
                f,
                "pool of {capacity} bytes cannot hold header plus twin regions ({needed} bytes needed)"
            ),
            RomulusError::OutOfRegion {
                offset,
                len,
                region_size,
            } => write!(
                f,
                "access of {len} bytes at region offset {offset} exceeds region size {region_size}"
            ),
            RomulusError::OutOfPersistentMemory {
                requested,
                available,
            } => write!(
                f,
                "persistent allocation of {requested} bytes exceeds remaining heap of {available} bytes"
            ),
            RomulusError::InvalidRoot(idx) => {
                write!(f, "root index {idx} out of range (max {})", NUM_ROOTS - 1)
            }
            RomulusError::Corrupted(msg) => write!(f, "persistent state corrupted: {msg}"),
            RomulusError::InjectedCrash => write!(f, "injected crash point reached"),
            RomulusError::Pmem(e) => write!(f, "persistent memory error: {e}"),
        }
    }
}

impl Error for RomulusError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RomulusError::Pmem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PmemError> for RomulusError {
    fn from(e: PmemError) -> Self {
        RomulusError::Pmem(e)
    }
}

/// Deployment flavour of the Romulus engine: where the library code runs and which
/// overheads its PM accesses pay.
#[derive(Debug, Clone)]
pub enum Flavor {
    /// Romulus outside any enclave (the paper's "Native" baseline).
    Native,
    /// `sgx-romulus`: the manual port running inside an SGX enclave; PM reads into the
    /// enclave and persistence fences pay enclave-side overheads.
    Sgx(Enclave),
    /// Unmodified Romulus inside a SCONE container: like [`Flavor::Sgx`] but with a
    /// container-constrained volatile redo log that spills on large transactions.
    Scone(Enclave),
}

impl Flavor {
    /// Human-readable flavour name as used in Fig. 6 ("Native", "Sgx-romulus",
    /// "Scone-romulus").
    pub fn name(&self) -> &'static str {
        match self {
            Flavor::Native => "Native",
            Flavor::Sgx(_) => "Sgx-romulus",
            Flavor::Scone(_) => "Scone-romulus",
        }
    }

    /// The enclave backing this flavour, if any.
    pub fn enclave(&self) -> Option<&Enclave> {
        match self {
            Flavor::Native => None,
            Flavor::Sgx(e) | Flavor::Scone(e) => Some(e),
        }
    }

    /// Reserve enclave memory for the volatile redo log (SGX/SCONE flavours).
    pub(crate) fn register_log_memory(&self) {
        if let Some(enclave) = self.enclave() {
            // 1 MB of volatile log space inside the enclave; ignore failure (the log then
            // simply competes with the rest of the heap).
            let _ = enclave.alloc_trusted(1024 * 1024);
        }
    }

    /// Charge the cost of reading `bytes` from PM into the runtime.
    pub(crate) fn charge_pm_read(&self, bytes: u64) {
        if let Some(enclave) = self.enclave() {
            enclave.charge_pm_read(bytes);
        }
    }

    /// Charge any enclave-side overhead for writing `bytes` to PM (the raw device cost is
    /// charged by the pool itself).
    pub(crate) fn charge_pm_write(&self, bytes: u64) {
        if let Flavor::Scone(enclave) = self {
            // SCONE interposes the write through its shielding layer.
            enclave.charge_data_staging(bytes / 64);
        }
    }

    /// Charge the enclave-side overhead of a persistence fence.
    pub(crate) fn charge_fence(&self) {
        if let Some(enclave) = self.enclave() {
            let cost = enclave.cost_model();
            // Fences take noticeably longer from inside an enclave (§VI: 1.6x-3.7x).
            let extra = match self {
                Flavor::Sgx(_) => cost.pm_fence_ns * 2,
                Flavor::Scone(_) => cost.pm_fence_ns * 3,
                Flavor::Native => 0,
            };
            enclave.clock().advance_ns(extra);
        }
    }

    /// Charge the cost of appending the `n`-th entry to the volatile redo log.
    pub(crate) fn charge_log_entry(&self, n: usize) {
        if let Flavor::Scone(enclave) = self {
            let cost = enclave.cost_model();
            // Each SPS swap produces two log entries; past the container's log budget the
            // log spills and every further entry becomes much more expensive.
            if n > cost.scone_log_spill_swaps * 2 {
                let penalty =
                    (cost.sps_native_swap_ns * cost.sps_scone_spill_factor).round() as u64;
                enclave.clock().advance_ns(penalty);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flavor_names_match_figure_legend() {
        let enclave = Enclave::create(b"romulus".to_vec());
        assert_eq!(Flavor::Native.name(), "Native");
        assert_eq!(Flavor::Sgx(enclave.clone()).name(), "Sgx-romulus");
        assert_eq!(Flavor::Scone(enclave).name(), "Scone-romulus");
    }

    #[test]
    fn only_enclave_flavors_expose_an_enclave() {
        let enclave = Enclave::create(b"romulus".to_vec());
        assert!(Flavor::Native.enclave().is_none());
        assert!(Flavor::Sgx(enclave.clone()).enclave().is_some());
        assert!(Flavor::Scone(enclave).enclave().is_some());
    }

    #[test]
    fn error_display_and_source() {
        let err = RomulusError::from(PmemError::ZeroCapacity);
        assert!(err.to_string().contains("persistent memory error"));
        assert!(Error::source(&err).is_some());
        assert!(RomulusError::InvalidRoot(99).to_string().contains("99"));
        assert!(RomulusError::InjectedCrash.to_string().contains("crash"));
    }
}
