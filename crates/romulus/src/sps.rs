//! The SPS (swaps-per-second) micro-benchmark used by Fig. 6 of the paper.
//!
//! SPS keeps an array of integers in persistent memory and repeatedly executes
//! transactions that swap randomly chosen pairs of elements. The metric is the number of
//! swaps completed per microsecond, measured for different transaction sizes (swaps per
//! transaction) and for the three deployment flavours (native, sgx-romulus,
//! scone-romulus) and two PWB/fence combinations.
//!
//! Each swap is executed for real through the Romulus transaction machinery; the flavours
//! additionally charge their modeled enclave-side overheads so that the relative curves
//! of Fig. 6 (native fastest, sgx-romulus 1.6–3.7× slower on fences, scone-romulus
//! collapsing once its volatile log budget is exceeded) are reproduced.

use crate::{Flavor, Romulus, RomulusError};
use plinius_pmem::{PmemPool, PwbKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_clock::CostModel;
use std::fmt;

/// Configuration of one SPS measurement point.
#[derive(Debug, Clone)]
pub struct SpsConfig {
    /// Size of the persistent integer array in bytes (10 MB in the paper).
    pub array_bytes: usize,
    /// Number of swaps per transaction (the x-axis of Fig. 6).
    pub swaps_per_tx: usize,
    /// Number of transactions to execute for the measurement.
    pub transactions: usize,
    /// Persistent write-back / fence combination.
    pub pwb: PwbKind,
    /// RNG seed (the swap positions are random).
    pub seed: u64,
}

impl SpsConfig {
    /// The paper's configuration (10 MB array) scaled down to `transactions` transactions
    /// per point so the sweep completes quickly.
    pub fn paper_like(swaps_per_tx: usize, pwb: PwbKind) -> Self {
        SpsConfig {
            array_bytes: 10 * 1024 * 1024,
            swaps_per_tx,
            transactions: 32,
            pwb,
            seed: 0x5053,
        }
    }

    /// A small configuration for unit tests.
    pub fn small(swaps_per_tx: usize) -> Self {
        SpsConfig {
            array_bytes: 64 * 1024,
            swaps_per_tx,
            transactions: 8,
            pwb: PwbKind::ClflushOptSfence,
            seed: 7,
        }
    }
}

/// Result of one SPS measurement point.
#[derive(Debug, Clone, PartialEq)]
pub struct SpsResult {
    /// Flavour name ("Native", "Sgx-romulus", "Scone-romulus").
    pub flavor: String,
    /// PWB/fence combination used.
    pub pwb: PwbKind,
    /// Swaps per transaction.
    pub swaps_per_tx: usize,
    /// Total swaps executed.
    pub total_swaps: u64,
    /// Total simulated time in nanoseconds.
    pub simulated_ns: u64,
    /// The Fig. 6 metric: swaps per microsecond.
    pub swaps_per_us: f64,
}

impl fmt::Display for SpsResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>14} {:>18} swaps/tx={:>5}: {:.2} swaps/us",
            self.flavor,
            self.pwb.to_string(),
            self.swaps_per_tx,
            self.swaps_per_us
        )
    }
}

/// Runs the SPS benchmark under the given flavour and cost model.
///
/// # Errors
///
/// Propagates [`RomulusError`] from pool creation or the transactions themselves.
pub fn run_sps(
    flavor: Flavor,
    cost: &CostModel,
    config: &SpsConfig,
) -> Result<SpsResult, RomulusError> {
    let region = config.array_bytes + 4096;
    let pool = PmemPool::builder(256 + 2 * region)
        .cost_model(cost.clone())
        .pwb(config.pwb)
        .clock(match flavor.enclave() {
            Some(enclave) => enclave.clock(),
            None => sim_clock::SimClock::new(),
        })
        .build()?;
    let clock = pool.clock();
    let rom = Romulus::create(pool, region, flavor)?;
    let elements = (config.array_bytes / 8) as u64;

    // Initialise the persistent array (identity permutation), in 4 KB chunks.
    let array = rom.transaction(|tx| {
        let ptr = tx.alloc(config.array_bytes)?;
        let mut chunk = Vec::with_capacity(4096);
        let mut written = 0u64;
        while written < elements {
            chunk.clear();
            let in_chunk = (elements - written).min(512);
            for i in 0..in_chunk {
                chunk.extend_from_slice(&(written + i).to_le_bytes());
            }
            tx.write_bytes(ptr.add(written * 8), &chunk)?;
            written += in_chunk;
        }
        tx.set_root(0, ptr)?;
        Ok(ptr)
    })?;

    let mut rng = StdRng::seed_from_u64(config.seed);
    let per_swap_overhead_ns = per_swap_overhead(&rom, cost);
    clock.reset();
    let start = clock.now_ns();
    let mut total_swaps = 0u64;
    for _ in 0..config.transactions {
        rom.transaction(|tx| {
            for _ in 0..config.swaps_per_tx {
                let a = rng.gen_range(0..elements);
                let b = rng.gen_range(0..elements);
                let va = tx.read_u64(array.add(a * 8))?;
                let vb = tx.read_u64(array.add(b * 8))?;
                tx.write_u64(array.add(a * 8), vb)?;
                tx.write_u64(array.add(b * 8), va)?;
            }
            Ok(())
        })?;
        total_swaps += config.swaps_per_tx as u64;
        clock.advance_ns(per_swap_overhead_ns * config.swaps_per_tx as u64);
    }
    let simulated_ns = clock.now_ns() - start;
    Ok(SpsResult {
        flavor: rom.flavor().name().to_owned(),
        pwb: config.pwb,
        swaps_per_tx: config.swaps_per_tx,
        total_swaps,
        simulated_ns,
        swaps_per_us: total_swaps as f64 / (simulated_ns as f64 / 1000.0),
    })
}

/// Per-swap bookkeeping overhead (random-index generation, loop and MEE overheads) that
/// is not captured by the transaction machinery itself.
fn per_swap_overhead(rom: &Romulus, cost: &CostModel) -> u64 {
    let base = cost.sps_native_swap_ns;
    let factor = match rom.flavor() {
        Flavor::Native => 1.0,
        Flavor::Sgx(_) => cost.sps_sgx_factor,
        Flavor::Scone(_) => cost.sps_scone_factor,
    };
    (base * factor).round() as u64
}

/// Runs the full Fig. 6 sweep for one server profile: all three flavours, both PWB
/// combinations available on the paper's servers, transaction sizes 2..=2048.
///
/// # Errors
///
/// Propagates [`RomulusError`] from any measurement point.
pub fn figure6_sweep(
    cost: &CostModel,
    transactions: usize,
) -> Result<Vec<SpsResult>, RomulusError> {
    let mut out = Vec::new();
    let sizes = [2usize, 8, 32, 64, 128, 256, 512, 1024, 2048];
    for pwb in [PwbKind::ClflushNop, PwbKind::ClflushOptSfence] {
        for flavor_id in 0..3 {
            for &swaps in &sizes {
                let mut cfg = SpsConfig::paper_like(swaps, pwb);
                cfg.transactions = transactions;
                // Keep the sweep fast: a smaller array preserves the curve shape.
                cfg.array_bytes = 1024 * 1024;
                let flavor = match flavor_id {
                    0 => Flavor::Native,
                    1 => Flavor::Sgx(
                        plinius_sgx::Enclave::builder(b"sgx-romulus".to_vec())
                            .cost_model(cost.clone())
                            .build(),
                    ),
                    _ => Flavor::Scone(
                        plinius_sgx::Enclave::builder(b"scone-romulus".to_vec())
                            .cost_model(cost.clone())
                            .build(),
                    ),
                };
                out.push(run_sps(flavor, cost, &cfg)?);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plinius_sgx::Enclave;

    fn cost() -> CostModel {
        CostModel::sgx_eml_pm()
    }

    fn sgx_flavor(c: &CostModel) -> Flavor {
        Flavor::Sgx(
            Enclave::builder(b"sgx-romulus".to_vec())
                .cost_model(c.clone())
                .build(),
        )
    }

    fn scone_flavor(c: &CostModel) -> Flavor {
        Flavor::Scone(
            Enclave::builder(b"scone-romulus".to_vec())
                .cost_model(c.clone())
                .build(),
        )
    }

    #[test]
    fn sps_preserves_array_contents_as_permutation() {
        let c = cost();
        let cfg = SpsConfig::small(16);
        let result = run_sps(Flavor::Native, &c, &cfg).unwrap();
        assert_eq!(result.total_swaps, 16 * 8);
        assert!(result.swaps_per_us > 0.0);
    }

    #[test]
    fn native_is_faster_than_sgx_which_beats_scone_on_large_tx() {
        let c = cost();
        let mut cfg = SpsConfig::small(256);
        cfg.array_bytes = 256 * 1024;
        let native = run_sps(Flavor::Native, &c, &cfg).unwrap();
        let sgx = run_sps(sgx_flavor(&c), &c, &cfg).unwrap();
        let scone = run_sps(scone_flavor(&c), &c, &cfg).unwrap();
        assert!(
            native.swaps_per_us > sgx.swaps_per_us,
            "native {} vs sgx {}",
            native.swaps_per_us,
            sgx.swaps_per_us
        );
        assert!(
            sgx.swaps_per_us > scone.swaps_per_us,
            "sgx {} vs scone {}",
            sgx.swaps_per_us,
            scone.swaps_per_us
        );
    }

    #[test]
    fn scone_collapses_beyond_its_log_budget() {
        let c = cost();
        let small = {
            let cfg = SpsConfig::small(16);
            run_sps(scone_flavor(&c), &c, &cfg).unwrap()
        };
        let large = {
            let mut cfg = SpsConfig::small(512);
            cfg.array_bytes = 256 * 1024;
            run_sps(scone_flavor(&c), &c, &cfg).unwrap()
        };
        // Relative to sgx-romulus at the same sizes, scone must degrade much more.
        let sgx_small = run_sps(sgx_flavor(&c), &c, &SpsConfig::small(16)).unwrap();
        let sgx_large = {
            let mut cfg = SpsConfig::small(512);
            cfg.array_bytes = 256 * 1024;
            run_sps(sgx_flavor(&c), &c, &cfg).unwrap()
        };
        let ratio_small = sgx_small.swaps_per_us / small.swaps_per_us;
        let ratio_large = sgx_large.swaps_per_us / large.swaps_per_us;
        assert!(
            ratio_large > ratio_small,
            "scone should fall further behind at large tx sizes: {ratio_small} -> {ratio_large}"
        );
        assert!(ratio_large > 1.5, "ratio_large = {ratio_large}");
    }

    #[test]
    fn result_display_mentions_flavor_and_metric() {
        let c = cost();
        let r = run_sps(Flavor::Native, &c, &SpsConfig::small(4)).unwrap();
        let line = r.to_string();
        assert!(line.contains("Native"));
        assert!(line.contains("swaps/us"));
    }
}
