//! Crash-atomicity property tests: no matter where a crash is injected inside a
//! transaction (before, during or after the user's stores, or during the back-region
//! copy), recovery always yields either the complete pre-transaction state or the
//! complete post-transaction state — never a mix.

use plinius_pmem::{CrashMode, PmemPool};
use plinius_romulus::{FailPoint, Flavor, PmPtr, Romulus, RomulusError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const REGION: usize = 32 * 1024;
const CELLS: usize = 32;

fn setup() -> (Romulus, Vec<PmPtr>) {
    let pool = PmemPool::new(256 + 2 * REGION).unwrap();
    let rom = Romulus::create(pool, REGION, Flavor::Native).unwrap();
    let ptrs = rom
        .transaction(|tx| {
            let mut ptrs = Vec::with_capacity(CELLS);
            for i in 0..CELLS as u64 {
                let p = tx.alloc(8)?;
                tx.write_u64(p, i)?;
                ptrs.push(p);
            }
            tx.set_root(0, ptrs[0])?;
            Ok(ptrs)
        })
        .unwrap();
    (rom, ptrs)
}

fn read_all(rom: &Romulus, ptrs: &[PmPtr]) -> Vec<u64> {
    ptrs.iter().map(|p| rom.read_u64(*p).unwrap()).collect()
}

// Variant names deliberately mirror the `FailPoint::After*` constructors.
#[allow(clippy::enum_variant_names)]
#[derive(Debug, Clone, Copy)]
enum InjectedPoint {
    AfterMutating,
    AfterStores(usize),
    AfterCopying,
    AfterBackCopies(usize),
}

fn failpoint_strategy() -> impl Strategy<Value = InjectedPoint> {
    prop_oneof![
        Just(InjectedPoint::AfterMutating),
        (0usize..CELLS).prop_map(InjectedPoint::AfterStores),
        Just(InjectedPoint::AfterCopying),
        (0usize..CELLS).prop_map(InjectedPoint::AfterBackCopies),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A crash at any injection point, followed by a power-failure with arbitrary cache
    /// eviction and recovery, leaves the cells in either the old or the new state,
    /// atomically.
    #[test]
    fn recovery_is_atomic(
        point in failpoint_strategy(),
        new_values in proptest::collection::vec(any::<u64>(), CELLS),
        crash_seed in any::<u64>(),
        arbitrary_eviction in any::<bool>(),
    ) {
        let (rom, ptrs) = setup();
        let old: Vec<u64> = (0..CELLS as u64).collect();

        let fp = match point {
            InjectedPoint::AfterMutating => FailPoint::AfterMutatingState,
            InjectedPoint::AfterStores(n) => FailPoint::AfterStores(n),
            InjectedPoint::AfterCopying => FailPoint::AfterCopyingState,
            InjectedPoint::AfterBackCopies(n) => FailPoint::AfterBackCopies(n),
        };
        rom.inject_failure(fp);
        let outcome = rom.transaction(|tx| {
            for (p, v) in ptrs.iter().zip(new_values.iter()) {
                tx.write_u64(*p, *v)?;
            }
            Ok(())
        });
        prop_assert_eq!(outcome.unwrap_err(), RomulusError::InjectedCrash);

        // Power failure: unflushed lines are lost or arbitrarily evicted.
        let mode = if arbitrary_eviction { CrashMode::ArbitraryEviction } else { CrashMode::DropUnflushed };
        let mut rng = StdRng::seed_from_u64(crash_seed);
        rom.pool().crash(&mut rng, mode);
        rom.recover().unwrap();

        let after = read_all(&rom, &ptrs);
        let is_old = after == old;
        let is_new = after == new_values;
        prop_assert!(is_old || is_new, "recovered state is a mix: {:?}", after);
    }

    /// Without crashes, a sequence of committed transactions is always fully visible.
    #[test]
    fn committed_transactions_are_durable(updates in proptest::collection::vec(
        (0usize..CELLS, any::<u64>()), 1..40)
    ) {
        let (rom, ptrs) = setup();
        let mut shadow: Vec<u64> = (0..CELLS as u64).collect();
        for (idx, value) in updates {
            rom.transaction(|tx| tx.write_u64(ptrs[idx], value)).unwrap();
            shadow[idx] = value;
            // A clean power failure between transactions must not lose anything.
            let mut rng = StdRng::seed_from_u64(value);
            rom.pool().crash(&mut rng, CrashMode::DropUnflushed);
            rom.recover().unwrap();
            prop_assert_eq!(read_all(&rom, &ptrs), shadow.clone());
        }
    }
}
