//! Remote attestation and secure key provisioning (step ➋/➌ of the paper's Fig. 5).
//!
//! In the real system the data/model owner performs SGX remote attestation against the
//! enclave, establishes a secure channel and sends the AES-GCM encryption key through
//! it. The simulator reproduces the *structure* of that workflow:
//!
//! 1. the enclave produces a [`Report`] over caller-chosen report data;
//! 2. the (simulated) quoting enclave signs it into a [`Quote`] with a platform key;
//! 3. the [`DataOwner`] verifies the quote against the expected measurement and the
//!    attestation service's platform key;
//! 4. on success the owner provisions the model key into the enclave over the secure
//!    channel ([`DataOwner::provision_key`]), where it is stored in trusted memory and
//!    optionally sealed for later restarts.

use crate::{Enclave, SgxError};
use plinius_crypto::{hmac_sha256, Key};

/// Report data a caller can bind into an attestation report (64 bytes, as in SGX).
pub type ReportData = [u8; 64];

/// An enclave-signed report: the local attestation structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// The enclave measurement (MRENCLAVE).
    pub measurement: [u8; 32],
    /// Caller-chosen data bound into the report (e.g. a channel public key).
    pub report_data: ReportData,
}

impl Report {
    /// Creates a report for the given enclave.
    pub fn for_enclave(enclave: &Enclave, report_data: ReportData) -> Self {
        Report {
            measurement: enclave.measurement(),
            report_data,
        }
    }

    fn signing_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(96);
        bytes.extend_from_slice(&self.measurement);
        bytes.extend_from_slice(&self.report_data);
        bytes
    }
}

/// A quote: a report signed by the platform's quoting enclave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    /// The attested report.
    pub report: Report,
    /// The quoting enclave's signature (HMAC under the platform attestation key in this
    /// simulation).
    pub signature: [u8; 32],
}

/// The platform attestation service (stands in for the quoting enclave + IAS/DCAP).
#[derive(Debug, Clone)]
pub struct AttestationService {
    platform_key: Vec<u8>,
}

impl AttestationService {
    /// Creates an attestation service with the given platform secret.
    pub fn new(platform_key: impl Into<Vec<u8>>) -> Self {
        AttestationService {
            platform_key: platform_key.into(),
        }
    }

    /// Produces a quote for the given enclave and report data.
    pub fn quote(&self, enclave: &Enclave, report_data: ReportData) -> Quote {
        let report = Report::for_enclave(enclave, report_data);
        let signature = hmac_sha256(&self.platform_key, &report.signing_bytes());
        Quote { report, signature }
    }

    /// Verifies that a quote was produced by this platform.
    pub fn verify(&self, quote: &Quote) -> bool {
        hmac_sha256(&self.platform_key, &quote.report.signing_bytes()) == quote.signature
    }
}

/// The model/dataset owner: the remote party of Fig. 5 that attests the enclave and
/// provisions the encryption key.
#[derive(Debug, Clone)]
pub struct DataOwner {
    /// The AES-GCM key protecting the owner's model and training data.
    model_key: Key,
    /// The enclave measurement the owner expects (obtained from the enclave build).
    expected_measurement: [u8; 32],
}

impl DataOwner {
    /// Creates an owner holding `model_key` and trusting enclaves whose measurement
    /// equals `expected_measurement`.
    pub fn new(model_key: Key, expected_measurement: [u8; 32]) -> Self {
        DataOwner {
            model_key,
            expected_measurement,
        }
    }

    /// The owner's model key (used by tests and by the owner-side data preparation).
    pub fn model_key(&self) -> &Key {
        &self.model_key
    }

    /// Runs the attestation + key-provisioning workflow of Fig. 5 (steps ➋ and ➌).
    ///
    /// On success the enclave holds the model key under the name `key_name`.
    ///
    /// # Errors
    ///
    /// * [`SgxError::AttestationFailed`] if the quote does not verify or the measurement
    ///   differs from the expected one;
    /// * [`SgxError::EnclaveDestroyed`] if the enclave is gone.
    pub fn provision_key(
        &self,
        service: &AttestationService,
        enclave: &Enclave,
        key_name: &str,
    ) -> Result<(), SgxError> {
        // The enclave binds fresh channel-establishment randomness into the report.
        let mut report_data = [0u8; 64];
        enclave.read_rand(&mut report_data);
        let quote = service.quote(enclave, report_data);
        if !service.verify(&quote) {
            return Err(SgxError::AttestationFailed(
                "quote signature did not verify".into(),
            ));
        }
        if quote.report.measurement != self.expected_measurement {
            return Err(SgxError::AttestationFailed(
                "enclave measurement does not match the expected binary".into(),
            ));
        }
        // Secure-channel transfer of the key into trusted memory (an ecall).
        let key = self.model_key.clone();
        enclave.ecall("provision_key", || {
            enclave.store_key(key_name, key);
        })?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn owner_for(enclave: &Enclave) -> DataOwner {
        let mut rng = StdRng::seed_from_u64(11);
        DataOwner::new(Key::generate_128(&mut rng), enclave.measurement())
    }

    #[test]
    fn quote_verifies_under_same_platform() {
        let enclave = Enclave::create(b"plinius-enclave".to_vec());
        let service = AttestationService::new(b"platform-secret".to_vec());
        let quote = service.quote(&enclave, [7u8; 64]);
        assert!(service.verify(&quote));
        assert_eq!(quote.report.measurement, enclave.measurement());
    }

    #[test]
    fn quote_from_other_platform_rejected() {
        let enclave = Enclave::create(b"plinius-enclave".to_vec());
        let service_a = AttestationService::new(b"platform-a".to_vec());
        let service_b = AttestationService::new(b"platform-b".to_vec());
        let quote = service_a.quote(&enclave, [0u8; 64]);
        assert!(!service_b.verify(&quote));
    }

    #[test]
    fn tampered_report_data_breaks_signature() {
        let enclave = Enclave::create(b"plinius-enclave".to_vec());
        let service = AttestationService::new(b"platform".to_vec());
        let mut quote = service.quote(&enclave, [1u8; 64]);
        quote.report.report_data[0] ^= 1;
        assert!(!service.verify(&quote));
    }

    #[test]
    fn key_provisioning_succeeds_for_expected_measurement() {
        let enclave = Enclave::create(b"plinius-enclave".to_vec());
        let service = AttestationService::new(b"platform".to_vec());
        let owner = owner_for(&enclave);
        owner
            .provision_key(&service, &enclave, "model-key")
            .unwrap();
        let provisioned = enclave.key("model-key").unwrap();
        assert_eq!(provisioned.as_bytes(), owner.model_key().as_bytes());
        // The transfer went through an ecall.
        assert_eq!(enclave.stats().value("sgx.ecall.provision_key"), 1);
    }

    #[test]
    fn key_provisioning_rejects_wrong_enclave() {
        let trusted = Enclave::create(b"trusted-binary".to_vec());
        let rogue = Enclave::create(b"rogue-binary".to_vec());
        let service = AttestationService::new(b"platform".to_vec());
        let owner = owner_for(&trusted);
        let err = owner
            .provision_key(&service, &rogue, "model-key")
            .unwrap_err();
        assert!(matches!(err, SgxError::AttestationFailed(_)));
        assert!(rogue.key("model-key").is_none());
    }

    #[test]
    fn key_provisioning_fails_on_destroyed_enclave() {
        let enclave = Enclave::create(b"plinius-enclave".to_vec());
        let service = AttestationService::new(b"platform".to_vec());
        let owner = owner_for(&enclave);
        enclave.destroy();
        assert_eq!(
            owner.provision_key(&service, &enclave, "k").unwrap_err(),
            SgxError::EnclaveDestroyed
        );
    }
}
