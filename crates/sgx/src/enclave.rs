//! The simulated SGX enclave runtime.
//!
//! An [`Enclave`] models the aspects of Intel SGX that shape Plinius' design and
//! performance:
//!
//! * a **trusted memory budget** (the EPC, 93.5 MB usable on the paper's hardware):
//!   enclave allocations are tracked and any in-enclave work performed while the working
//!   set exceeds the EPC is charged an extra paging penalty, which is what produces the
//!   knee in Fig. 7 / Table I;
//! * **enclave transitions**: every `ecall`/`ocall` costs ~13'100 cycles, so chatty
//!   designs (e.g. SSD checkpointing through `fwrite` ocalls) pay for it;
//! * **`sgx_read_rand`**, key storage, and data **sealing** for the encryption engine;
//! * a **measurement** (hash of the enclave binary) used by the attestation workflow.
//!
//! The enclave does not execute machine code; instead, trusted computations are ordinary
//! Rust closures run under [`Enclave::ecall`], and the simulator accounts for their cost
//! through the `charge_*` methods.

use crate::SgxError;
use parking_lot::Mutex;
use plinius_crypto::{AesGcm, CryptoError, EnginePolicy, Key, SealedBuffer, Sha256};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use sim_clock::{ClockHandle, CostModel, StatsHandle};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default maximum enclave heap size (the paper configures 8 GB).
pub const DEFAULT_HEAP_SIZE: u64 = 8 * 1024 * 1024 * 1024;
/// Default enclave stack size (8 MB in the paper).
pub const DEFAULT_STACK_SIZE: u64 = 8 * 1024 * 1024;

/// Builder for [`Enclave`] instances.
#[derive(Debug, Clone)]
pub struct EnclaveBuilder {
    binary: Vec<u8>,
    cost: CostModel,
    clock: Option<ClockHandle>,
    stats: Option<StatsHandle>,
    heap_size: u64,
    stack_size: u64,
    rng_seed: u64,
    crypto: Option<EnginePolicy>,
}

impl EnclaveBuilder {
    /// Starts building an enclave from the given "binary" (any byte string; its SHA-256
    /// becomes the enclave measurement, i.e. MRENCLAVE).
    pub fn new(binary: impl Into<Vec<u8>>) -> Self {
        EnclaveBuilder {
            binary: binary.into(),
            cost: CostModel::default(),
            clock: None,
            stats: None,
            heap_size: DEFAULT_HEAP_SIZE,
            stack_size: DEFAULT_STACK_SIZE,
            rng_seed: 0x5047_5845,
            crypto: None,
        }
    }

    /// Sets the hardware cost model (server profile).
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Shares an existing simulation clock.
    pub fn clock(mut self, clock: ClockHandle) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Shares an existing statistics registry.
    pub fn stats(mut self, stats: StatsHandle) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Overrides the maximum enclave heap size.
    pub fn heap_size(mut self, bytes: u64) -> Self {
        self.heap_size = bytes;
        self
    }

    /// Overrides the enclave stack size.
    pub fn stack_size(mut self, bytes: u64) -> Self {
        self.stack_size = bytes;
        self
    }

    /// Seeds the enclave's `sgx_read_rand` source (deterministic for tests).
    pub fn rng_seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }

    /// Pins the AES-GCM engine policy for every cipher context this enclave derives
    /// (see [`plinius_crypto::EnginePolicy`]). Defaults to the `PLINIUS_CRYPTO`
    /// environment variable (`auto` when unset): hardware AES-NI + PCLMUL kernels
    /// where the host supports them, the scalar table-driven engine elsewhere.
    pub fn crypto_policy(mut self, policy: EnginePolicy) -> Self {
        self.crypto = Some(policy);
        self
    }

    /// Creates the enclave (the equivalent of `sgx_create_enclave`).
    pub fn build(self) -> Enclave {
        let measurement = Sha256::digest(&self.binary);
        Enclave {
            inner: Arc::new(EnclaveInner {
                measurement,
                cost: self.cost,
                clock: self.clock.unwrap_or_default(),
                stats: self.stats.unwrap_or_default(),
                heap_size: self.heap_size,
                stack_size: self.stack_size,
                heap_used: AtomicU64::new(0),
                peak_heap: AtomicU64::new(0),
                keys: Mutex::new(HashMap::new()),
                gcm_cache: Mutex::new(HashMap::new()),
                crypto: self.crypto.unwrap_or_else(EnginePolicy::from_env),
                rng: Mutex::new(StdRng::seed_from_u64(self.rng_seed)),
                destroyed: AtomicU64::new(0),
            }),
        }
    }
}

#[derive(Debug)]
struct EnclaveInner {
    measurement: [u8; 32],
    cost: CostModel,
    clock: ClockHandle,
    stats: StatsHandle,
    heap_size: u64,
    stack_size: u64,
    heap_used: AtomicU64,
    peak_heap: AtomicU64,
    keys: Mutex<HashMap<String, Key>>,
    /// Warm AES-GCM contexts (key schedule + GHASH tables, engine-selected) per stored
    /// key name. Entries are invalidated whenever the underlying key changes, so a
    /// cached context never outlives its key.
    gcm_cache: Mutex<HashMap<String, Arc<AesGcm>>>,
    /// Engine policy every derived cipher context is built with.
    crypto: EnginePolicy,
    rng: Mutex<StdRng>,
    destroyed: AtomicU64,
}

/// A simulated SGX enclave. Cloning yields another handle to the same enclave.
#[derive(Debug, Clone)]
pub struct Enclave {
    inner: Arc<EnclaveInner>,
}

impl Enclave {
    /// Convenience constructor with default settings (see [`EnclaveBuilder`]).
    pub fn create(binary: impl Into<Vec<u8>>) -> Self {
        EnclaveBuilder::new(binary).build()
    }

    /// Returns a builder.
    pub fn builder(binary: impl Into<Vec<u8>>) -> EnclaveBuilder {
        EnclaveBuilder::new(binary)
    }

    /// The enclave measurement (MRENCLAVE): SHA-256 of the enclave binary.
    pub fn measurement(&self) -> [u8; 32] {
        self.inner.measurement
    }

    /// The cost model (server profile) this enclave runs on.
    pub fn cost_model(&self) -> &CostModel {
        &self.inner.cost
    }

    /// The shared simulation clock.
    pub fn clock(&self) -> ClockHandle {
        Arc::clone(&self.inner.clock)
    }

    /// The shared statistics registry.
    pub fn stats(&self) -> StatsHandle {
        Arc::clone(&self.inner.stats)
    }

    /// Usable EPC size for this enclave in bytes.
    pub fn epc_usable_bytes(&self) -> u64 {
        self.inner.cost.epc_usable_bytes
    }

    /// Configured maximum heap size.
    pub fn heap_size(&self) -> u64 {
        self.inner.heap_size
    }

    /// Configured stack size.
    pub fn stack_size(&self) -> u64 {
        self.inner.stack_size
    }

    /// Whether [`Enclave::destroy`] has been called.
    pub fn is_destroyed(&self) -> bool {
        self.inner.destroyed.load(Ordering::Relaxed) != 0
    }

    /// Destroys the enclave: trusted memory is wiped and further ecalls fail.
    pub fn destroy(&self) {
        self.inner.destroyed.store(1, Ordering::Relaxed);
        self.inner.keys.lock().clear();
        self.inner.gcm_cache.lock().clear();
        self.inner.heap_used.store(0, Ordering::Relaxed);
    }

    // ---------------------------------------------------------------- transitions

    /// Performs an ecall: enters the enclave, runs `f`, exits. Both crossings are charged
    /// the enclave-transition cost of the active server profile.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::EnclaveDestroyed`] if the enclave has been destroyed.
    pub fn ecall<R>(&self, name: &str, f: impl FnOnce() -> R) -> Result<R, SgxError> {
        if self.is_destroyed() {
            return Err(SgxError::EnclaveDestroyed);
        }
        self.inner.stats.counter("sgx.ecalls").incr();
        self.inner
            .stats
            .counter(&format!("sgx.ecall.{name}"))
            .incr();
        self.inner
            .clock
            .advance_ns(self.inner.cost.enclave_transition_ns());
        let out = f();
        self.inner
            .clock
            .advance_ns(self.inner.cost.enclave_transition_ns());
        Ok(out)
    }

    /// Performs an ocall from inside the enclave to the untrusted runtime.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::EnclaveDestroyed`] if the enclave has been destroyed.
    pub fn ocall<R>(&self, name: &str, f: impl FnOnce() -> R) -> Result<R, SgxError> {
        if self.is_destroyed() {
            return Err(SgxError::EnclaveDestroyed);
        }
        self.inner.stats.counter("sgx.ocalls").incr();
        self.inner
            .stats
            .counter(&format!("sgx.ocall.{name}"))
            .incr();
        self.inner
            .clock
            .advance_ns(self.inner.cost.enclave_transition_ns());
        let out = f();
        self.inner
            .clock
            .advance_ns(self.inner.cost.enclave_transition_ns());
        Ok(out)
    }

    /// Number of ecalls performed so far.
    pub fn ecall_count(&self) -> u64 {
        self.inner.stats.value("sgx.ecalls")
    }

    /// Number of ocalls performed so far.
    pub fn ocall_count(&self) -> u64 {
        self.inner.stats.value("sgx.ocalls")
    }

    // ---------------------------------------------------------------- trusted memory

    /// Registers `bytes` of trusted (in-enclave) memory as allocated.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::OutOfEnclaveMemory`] if the allocation would exceed the
    /// configured enclave heap.
    pub fn alloc_trusted(&self, bytes: u64) -> Result<(), SgxError> {
        let new = self.inner.heap_used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if new > self.inner.heap_size {
            self.inner.heap_used.fetch_sub(bytes, Ordering::Relaxed);
            return Err(SgxError::OutOfEnclaveMemory {
                requested: bytes,
                heap_size: self.inner.heap_size,
            });
        }
        self.inner.peak_heap.fetch_max(new, Ordering::Relaxed);
        Ok(())
    }

    /// Releases `bytes` of trusted memory previously registered with
    /// [`Enclave::alloc_trusted`].
    pub fn free_trusted(&self, bytes: u64) {
        let mut current = self.inner.heap_used.load(Ordering::Relaxed);
        loop {
            let new = current.saturating_sub(bytes);
            match self.inner.heap_used.compare_exchange(
                current,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(observed) => current = observed,
            }
        }
    }

    /// Current trusted working set in bytes.
    pub fn working_set(&self) -> u64 {
        self.inner.heap_used.load(Ordering::Relaxed)
    }

    /// Highest trusted working set observed since creation.
    pub fn peak_working_set(&self) -> u64 {
        self.inner.peak_heap.load(Ordering::Relaxed)
    }

    /// Whether the current working set exceeds the usable EPC (i.e. the SGX driver is
    /// paging and in-enclave work pays the thrashing penalty).
    pub fn beyond_epc(&self) -> bool {
        self.working_set() > self.epc_usable_bytes()
    }

    // ---------------------------------------------------------------- cost charging

    /// Charges the cost of AES-GCM work over `bytes` performed inside the enclave.
    pub fn charge_crypto(&self, bytes: u64) {
        let ns = self.inner.cost.crypto_ns(bytes, self.working_set());
        self.inner.clock.advance_ns(ns);
        self.inner.stats.counter("sgx.crypto_bytes").add(bytes);
        self.maybe_count_paging(bytes);
    }

    /// The simulated cost of AES-GCM work over `bytes` *without* advancing the clock;
    /// the statistics are still recorded exactly as [`Enclave::charge_crypto`] would.
    ///
    /// Used by the pipelined mirror: the sealing runs on a background worker and its
    /// lane cost is charged at the overlap join (`SimSpan::overlap`) instead of
    /// inline, so the simulated total reflects `max(compute, seal)` rather than
    /// their sum.
    pub fn charge_crypto_offline(&self, bytes: u64) -> u64 {
        let ns = self.inner.cost.crypto_ns(bytes, self.working_set());
        self.inner.stats.counter("sgx.crypto_bytes").add(bytes);
        self.maybe_count_paging(bytes);
        ns
    }

    /// Charges the cost of copying `bytes` from PM into enclave memory.
    pub fn charge_pm_read(&self, bytes: u64) {
        let ns = self.inner.cost.pm_read_ns(bytes, self.working_set());
        self.inner.clock.advance_ns(ns);
        self.inner.stats.counter("sgx.pm_read_bytes").add(bytes);
        self.maybe_count_paging(bytes);
    }

    /// Charges the cost of writing `bytes` from the enclave out to PM.
    pub fn charge_pm_write(&self, bytes: u64) {
        let ns = self.inner.cost.pm_write_ns(bytes);
        self.inner.clock.advance_ns(ns);
        self.inner.stats.counter("sgx.pm_write_bytes").add(bytes);
    }

    /// Charges the cost of writing `bytes` of checkpoint data to the SSD (via ocalls).
    pub fn charge_ssd_write(&self, bytes: u64) {
        let ns = self.inner.cost.ssd_write_ns(bytes);
        self.inner.clock.advance_ns(ns);
        self.inner.stats.counter("sgx.ssd_write_bytes").add(bytes);
    }

    /// Charges the cost of reading `bytes` of checkpoint data from the SSD into the
    /// enclave.
    pub fn charge_ssd_read(&self, bytes: u64) {
        let ns = self.inner.cost.ssd_read_ns(bytes, self.working_set());
        self.inner.clock.advance_ns(ns);
        self.inner.stats.counter("sgx.ssd_read_bytes").add(bytes);
        self.maybe_count_paging(bytes);
    }

    /// Charges the cost of an fsync issued on behalf of the enclave.
    pub fn charge_fsync(&self) {
        self.inner.clock.advance_ns(self.inner.cost.ssd_fsync());
        self.inner.stats.counter("sgx.fsyncs").incr();
    }

    /// Charges `flops` floating-point operations of in-enclave training compute.
    pub fn charge_compute(&self, flops: u64) {
        self.inner
            .clock
            .advance_ns(self.inner.cost.enclave_compute_ns(flops));
        self.inner.stats.counter("sgx.flops").add(flops);
    }

    /// Charges the cost of staging `bytes` of training data into the enclave
    /// (copy + batch assembly, excluding decryption).
    pub fn charge_data_staging(&self, bytes: u64) {
        self.inner
            .clock
            .advance_ns(self.inner.cost.data_staging_ns(bytes));
        self.inner.stats.counter("sgx.staged_bytes").add(bytes);
    }

    fn maybe_count_paging(&self, bytes: u64) {
        if self.inner.cost.sgx_hardware && self.beyond_epc() {
            // One EPC page swap per 4 KB touched while beyond the limit.
            self.inner
                .stats
                .counter("sgx.epc_page_swaps")
                .add(bytes / 4096);
        }
    }

    // ---------------------------------------------------------------- randomness & keys

    /// Fills `buf` with random bytes (the `sgx_read_rand` SDK call).
    pub fn read_rand(&self, buf: &mut [u8]) {
        self.inner.rng.lock().fill_bytes(buf);
    }

    /// Generates a fresh random 128-bit key inside the enclave.
    pub fn generate_key_128(&self) -> Key {
        let mut rng = self.inner.rng.lock();
        Key::generate_128(&mut *rng)
    }

    /// Stores a named key in trusted memory (e.g. the model key provisioned over the
    /// attested channel). Any cached cipher context for the name is invalidated.
    pub fn store_key(&self, name: &str, key: Key) {
        // Lock order: keys, then gcm_cache (everywhere), so a concurrent
        // `gcm_for_key` can never re-insert a context derived from the old key.
        let mut keys = self.inner.keys.lock();
        keys.insert(name.to_owned(), key);
        self.inner.gcm_cache.lock().remove(name);
    }

    /// Retrieves a previously stored key.
    pub fn key(&self, name: &str) -> Option<Key> {
        self.inner.keys.lock().get(name).cloned()
    }

    /// Runs `f` with a borrowed reference to the named key, without cloning the key
    /// bytes out of the store. Returns `None` if the key is absent.
    ///
    /// Used by allocation-free hot paths (e.g. the mirror's sealing scratch) that only
    /// need to *compare* the stored key against a cached schedule.
    pub fn with_key<R>(&self, name: &str, f: impl FnOnce(&Key) -> R) -> Option<R> {
        self.inner.keys.lock().get(name).map(f)
    }

    /// Removes a stored key (and any cached cipher context derived from it).
    pub fn remove_key(&self, name: &str) -> Option<Key> {
        let mut keys = self.inner.keys.lock();
        self.inner.gcm_cache.lock().remove(name);
        keys.remove(name)
    }

    /// The AES-GCM engine policy this enclave builds cipher contexts with.
    pub fn crypto_policy(&self) -> EnginePolicy {
        self.inner.crypto
    }

    /// Returns a warm AES-GCM context for the named stored key, building it (key
    /// schedule + GHASH tables + engine selection per the enclave's policy) on first
    /// use and caching it until the key is re-provisioned or removed. Returns `None`
    /// if no key of that name is stored.
    ///
    /// The steady-state mirror/checkpoint paths call this once per batch, so key
    /// expansion never recurs in the hot loop and the returned handle is shared
    /// (cloning the `Arc` allocates nothing).
    pub fn gcm_for_key(&self, name: &str) -> Option<Arc<AesGcm>> {
        if let Some(gcm) = self.inner.gcm_cache.lock().get(name) {
            return Some(Arc::clone(gcm));
        }
        // Build under the keys lock (keys before gcm_cache, as everywhere) so a
        // concurrent re-provision of the same name cannot leave a stale context
        // cached: store/remove also invalidate while holding the keys lock.
        let keys = self.inner.keys.lock();
        let key = keys.get(name)?;
        let gcm = Arc::new(key.gcm_with_policy(self.inner.crypto));
        Some(Arc::clone(
            self.inner
                .gcm_cache
                .lock()
                .entry(name.to_owned())
                .or_insert(gcm),
        ))
    }

    // ---------------------------------------------------------------- sealing

    /// Derives this enclave's sealing key (bound to its measurement, like
    /// `MRENCLAVE`-policy sealing in SGX).
    pub fn sealing_key(&self) -> Key {
        // The platform sealing secret is fixed for the simulated machine; binding it to
        // the measurement reproduces the property that only the same enclave binary can
        // unseal the data.
        let derived = plinius_crypto::hmac_sha256(
            b"plinius-simulated-platform-fuse-key",
            &self.inner.measurement,
        );
        Key::new(&derived[..16]).expect("16-byte key is always valid")
    }

    /// Derives a tenant-scoped sealing key: the platform sealing secret keyed over
    /// `measurement ‖ tenant`. Different tenants on the same enclave binary obtain
    /// cryptographically independent keys, so one tenant's sealed epochs fail
    /// authentication wholesale under any other tenant's key.
    pub fn tenant_sealing_key(&self, tenant: u64) -> Key {
        let mut message = [0u8; 40];
        message[..32].copy_from_slice(&self.inner.measurement);
        message[32..].copy_from_slice(&tenant.to_le_bytes());
        let derived = plinius_crypto::hmac_sha256(b"plinius-simulated-platform-fuse-key", &message);
        Key::new(&derived[..16]).expect("16-byte key is always valid")
    }

    /// Seals `data` so that only an enclave with the same measurement can recover it
    /// (the `sgx_seal_data` SDK call).
    ///
    /// # Errors
    ///
    /// Propagates [`CryptoError`] from the underlying AEAD.
    pub fn seal(&self, data: &[u8]) -> Result<SealedBuffer, CryptoError> {
        self.charge_crypto(data.len() as u64);
        let mut rng = self.inner.rng.lock();
        SealedBuffer::seal_with_aad(
            &self.sealing_key(),
            data,
            &self.inner.measurement,
            &mut *rng,
        )
    }

    /// Unseals data previously sealed by an enclave with the same measurement.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::AuthenticationFailed`] if the blob was sealed by a
    /// different enclave or tampered with.
    pub fn unseal(&self, sealed: &SealedBuffer) -> Result<Vec<u8>, CryptoError> {
        self.charge_crypto(sealed.len() as u64);
        sealed.open_with_aad(&self.sealing_key(), &self.inner.measurement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_clock::SimClock;

    #[test]
    fn measurement_is_binary_hash() {
        let a = Enclave::create(b"enclave-binary-a".to_vec());
        let b = Enclave::create(b"enclave-binary-b".to_vec());
        assert_eq!(a.measurement(), Sha256::digest(b"enclave-binary-a"));
        assert_ne!(a.measurement(), b.measurement());
    }

    #[test]
    fn ecall_and_ocall_charge_two_transitions_each() {
        let clock = SimClock::new();
        let enclave = Enclave::builder(b"bin".to_vec())
            .clock(Arc::clone(&clock))
            .cost_model(CostModel::sgx_eml_pm())
            .build();
        let t = enclave.cost_model().enclave_transition_ns();
        enclave.ecall("train", || ()).unwrap();
        assert_eq!(clock.now_ns(), 2 * t);
        enclave.ocall("load_data", || ()).unwrap();
        assert_eq!(clock.now_ns(), 4 * t);
        assert_eq!(enclave.ecall_count(), 1);
        assert_eq!(enclave.ocall_count(), 1);
        assert_eq!(enclave.stats().value("sgx.ecall.train"), 1);
    }

    #[test]
    fn destroyed_enclave_rejects_calls_and_wipes_keys() {
        let enclave = Enclave::create(b"bin".to_vec());
        enclave.store_key("model", Key::new(&[1u8; 16]).unwrap());
        enclave.destroy();
        assert!(enclave.is_destroyed());
        assert!(enclave.key("model").is_none());
        assert_eq!(
            enclave.ecall("x", || ()).unwrap_err(),
            SgxError::EnclaveDestroyed
        );
        assert_eq!(
            enclave.ocall("x", || ()).unwrap_err(),
            SgxError::EnclaveDestroyed
        );
    }

    #[test]
    fn trusted_memory_accounting_and_epc_boundary() {
        let enclave = Enclave::create(b"bin".to_vec());
        let epc = enclave.epc_usable_bytes();
        enclave.alloc_trusted(epc - 1024).unwrap();
        assert!(!enclave.beyond_epc());
        enclave.alloc_trusted(2048).unwrap();
        assert!(enclave.beyond_epc());
        enclave.free_trusted(2048);
        assert!(!enclave.beyond_epc());
        assert_eq!(enclave.peak_working_set(), epc + 1024);
    }

    #[test]
    fn heap_limit_is_enforced() {
        let enclave = Enclave::builder(b"bin".to_vec()).heap_size(1024).build();
        assert!(enclave.alloc_trusted(512).is_ok());
        let err = enclave.alloc_trusted(1024).unwrap_err();
        assert!(matches!(err, SgxError::OutOfEnclaveMemory { .. }));
        // Failed allocation must not leak accounting.
        assert_eq!(enclave.working_set(), 512);
    }

    #[test]
    fn free_trusted_never_underflows() {
        let enclave = Enclave::create(b"bin".to_vec());
        enclave.alloc_trusted(100).unwrap();
        enclave.free_trusted(1_000_000);
        assert_eq!(enclave.working_set(), 0);
    }

    #[test]
    fn crypto_charge_is_higher_beyond_epc_on_real_sgx() {
        let clock = SimClock::new();
        let enclave = Enclave::builder(b"bin".to_vec())
            .clock(Arc::clone(&clock))
            .cost_model(CostModel::sgx_eml_pm())
            .build();
        let bytes = 10 * 1024 * 1024;
        enclave.charge_crypto(bytes);
        let below = clock.now_ns();
        enclave
            .alloc_trusted(enclave.epc_usable_bytes() + 1)
            .unwrap();
        clock.reset();
        enclave.charge_crypto(bytes);
        let beyond = clock.now_ns();
        assert!(beyond > 2 * below, "below={below} beyond={beyond}");
        assert!(enclave.stats().value("sgx.epc_page_swaps") > 0);
    }

    #[test]
    fn paging_penalty_absent_in_simulation_mode() {
        let clock = SimClock::new();
        let enclave = Enclave::builder(b"bin".to_vec())
            .clock(Arc::clone(&clock))
            .cost_model(CostModel::eml_sgx_pm())
            .build();
        let bytes = 10 * 1024 * 1024;
        enclave.charge_crypto(bytes);
        let below = clock.now_ns();
        enclave
            .alloc_trusted(enclave.epc_usable_bytes() + 1)
            .unwrap();
        clock.reset();
        enclave.charge_crypto(bytes);
        assert_eq!(clock.now_ns(), below);
        assert_eq!(enclave.stats().value("sgx.epc_page_swaps"), 0);
    }

    #[test]
    fn read_rand_is_deterministic_per_seed() {
        let a = Enclave::builder(b"bin".to_vec()).rng_seed(1).build();
        let b = Enclave::builder(b"bin".to_vec()).rng_seed(1).build();
        let c = Enclave::builder(b"bin".to_vec()).rng_seed(2).build();
        let mut ba = [0u8; 16];
        let mut bb = [0u8; 16];
        let mut bc = [0u8; 16];
        a.read_rand(&mut ba);
        b.read_rand(&mut bb);
        c.read_rand(&mut bc);
        assert_eq!(ba, bb);
        assert_ne!(ba, bc);
    }

    #[test]
    fn key_storage_round_trip() {
        let enclave = Enclave::create(b"bin".to_vec());
        let key = enclave.generate_key_128();
        enclave.store_key("model", key.clone());
        assert_eq!(enclave.key("model").unwrap().as_bytes(), key.as_bytes());
        assert!(enclave.key("missing").is_none());
        assert!(enclave.remove_key("model").is_some());
        assert!(enclave.key("model").is_none());
    }

    #[test]
    fn gcm_cache_is_shared_until_the_key_changes() {
        let enclave = Enclave::builder(b"bin".to_vec())
            .crypto_policy(EnginePolicy::Auto)
            .build();
        assert_eq!(enclave.crypto_policy(), EnginePolicy::Auto);
        assert!(enclave.gcm_for_key("model").is_none());

        enclave.store_key("model", Key::new(&[1u8; 16]).unwrap());
        let a = enclave.gcm_for_key("model").unwrap();
        let b = enclave.gcm_for_key("model").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "warm lookups share one context");

        // Re-provisioning the key invalidates the cached context...
        enclave.store_key("model", Key::new(&[2u8; 16]).unwrap());
        let c = enclave.gcm_for_key("model").unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "rotation must rebuild the context");
        // ...and the fresh context really uses the new key: bytes sealed under the
        // old context fail authentication under the new one.
        let iv = [3u8; 12];
        let (ct, tag) = a.encrypt(&iv, b"", b"payload").unwrap();
        assert!(c.decrypt(&iv, b"", &ct, &tag).is_err());

        enclave.remove_key("model");
        assert!(enclave.gcm_for_key("model").is_none());
    }

    #[test]
    fn explicit_crypto_policy_pins_the_engine() {
        let enclave = Enclave::builder(b"bin".to_vec())
            .crypto_policy(EnginePolicy::Reference)
            .build();
        enclave.store_key("model", Key::new(&[1u8; 16]).unwrap());
        let gcm = enclave.gcm_for_key("model").unwrap();
        assert_eq!(gcm.engine_name(), "reference");
    }

    #[test]
    fn sealing_is_bound_to_the_measurement() {
        let enclave = Enclave::create(b"binary-v1".to_vec());
        let sealed = enclave.seal(b"sealed model key").unwrap();
        assert_eq!(enclave.unseal(&sealed).unwrap(), b"sealed model key");
        // A different enclave (different measurement) cannot unseal.
        let other = Enclave::create(b"binary-v2".to_vec());
        assert!(other.unseal(&sealed).is_err());
        // Same binary, different instance: can unseal (MRENCLAVE policy).
        let same = Enclave::create(b"binary-v1".to_vec());
        assert_eq!(same.unseal(&sealed).unwrap(), b"sealed model key");
    }

    #[test]
    fn tenant_sealing_keys_are_independent_per_tenant_and_per_binary() {
        let enclave = Enclave::create(b"binary-v1".to_vec());
        // Deterministic per (measurement, tenant)...
        assert_eq!(
            enclave.tenant_sealing_key(3).as_bytes(),
            enclave.tenant_sealing_key(3).as_bytes()
        );
        // ...different across tenants, from the plain sealing key, and across binaries.
        assert_ne!(
            enclave.tenant_sealing_key(0).as_bytes(),
            enclave.tenant_sealing_key(1).as_bytes()
        );
        assert_ne!(
            enclave.tenant_sealing_key(0).as_bytes(),
            enclave.sealing_key().as_bytes()
        );
        let other = Enclave::create(b"binary-v2".to_vec());
        assert_ne!(
            enclave.tenant_sealing_key(7).as_bytes(),
            other.tenant_sealing_key(7).as_bytes()
        );
    }

    #[test]
    fn default_sizes_match_paper_configuration() {
        let enclave = Enclave::create(b"bin".to_vec());
        assert_eq!(enclave.heap_size(), 8 * 1024 * 1024 * 1024);
        assert_eq!(enclave.stack_size(), 8 * 1024 * 1024);
        assert_eq!(
            enclave.epc_usable_bytes(),
            (93.5f64 * 1024.0 * 1024.0) as u64
        );
    }
}
