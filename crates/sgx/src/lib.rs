//! # plinius-sgx
//!
//! An **Intel SGX enclave simulator** providing the trusted-execution substrate the
//! Plinius paper builds on. Real SGX hardware is not available to this reproduction, so
//! the simulator models the properties of SGX that shape Plinius' design and results:
//!
//! * the trusted/untrusted split with explicit [`Enclave::ecall`] / [`Enclave::ocall`]
//!   crossings, each charged ~13'100 cycles;
//! * the EPC limit (93.5 MB usable) with paging penalties for in-enclave work once the
//!   trusted working set exceeds it — the source of the knee in Fig. 7 / Table I;
//! * `sgx_read_rand`, measurement-bound data sealing, and an attestation + secure key
//!   provisioning workflow mirroring Fig. 5 of the paper.
//!
//! # Example
//!
//! ```
//! use plinius_sgx::{AttestationService, DataOwner, Enclave};
//! use plinius_crypto::Key;
//! use rand::SeedableRng;
//!
//! let enclave = Enclave::create(b"plinius-enclave-binary".to_vec());
//! let service = AttestationService::new(b"platform-secret".to_vec());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let owner = DataOwner::new(Key::generate_128(&mut rng), enclave.measurement());
//! owner.provision_key(&service, &enclave, "model-key")?;
//! assert!(enclave.key("model-key").is_some());
//! # Ok::<(), plinius_sgx::SgxError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

pub mod attestation;
pub mod enclave;

pub use attestation::{AttestationService, DataOwner, Quote, Report, ReportData};
pub use enclave::{Enclave, EnclaveBuilder, DEFAULT_HEAP_SIZE, DEFAULT_STACK_SIZE};

/// Errors produced by the SGX simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SgxError {
    /// The enclave has been destroyed; no further calls are possible.
    EnclaveDestroyed,
    /// A trusted allocation exceeded the configured enclave heap.
    OutOfEnclaveMemory {
        /// Size of the failing allocation in bytes.
        requested: u64,
        /// Configured heap limit in bytes.
        heap_size: u64,
    },
    /// Remote attestation failed (bad quote or unexpected measurement).
    AttestationFailed(String),
    /// A required key is not present in the enclave's key store.
    MissingKey(String),
}

impl fmt::Display for SgxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SgxError::EnclaveDestroyed => write!(f, "enclave has been destroyed"),
            SgxError::OutOfEnclaveMemory {
                requested,
                heap_size,
            } => write!(
                f,
                "trusted allocation of {requested} bytes exceeds enclave heap of {heap_size} bytes"
            ),
            SgxError::AttestationFailed(reason) => write!(f, "remote attestation failed: {reason}"),
            SgxError::MissingKey(name) => write!(f, "key '{name}' not provisioned in enclave"),
        }
    }
}

impl Error for SgxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_cleanly() {
        assert_eq!(
            SgxError::EnclaveDestroyed.to_string(),
            "enclave has been destroyed"
        );
        assert!(SgxError::OutOfEnclaveMemory {
            requested: 10,
            heap_size: 5
        }
        .to_string()
        .contains("10 bytes"));
        assert!(SgxError::MissingKey("model".into())
            .to_string()
            .contains("model"));
        assert!(SgxError::AttestationFailed("bad quote".into())
            .to_string()
            .contains("bad quote"));
    }
}
