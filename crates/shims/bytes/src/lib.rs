//! Offline stand-in for the `bytes` crate: [`Buf`], [`BufMut`] and
//! [`BytesMut`] with little-endian accessors, enough for the checkpoint codec.

#![warn(missing_docs)]

/// An immutable byte cursor, implemented for `&[u8]` (reads advance the slice).
pub trait Buf {
    /// Bytes remaining between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;
    /// Copies `len` bytes out of the buffer, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `len` bytes remain.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;
    /// Reads a little-endian `u32`, advancing the cursor.
    fn get_u32_le(&mut self) -> u32 {
        let b = self.copy_to_bytes(4);
        u32::from_le_bytes(b.as_ref().try_into().expect("4 bytes"))
    }
    /// Reads a little-endian `u64`, advancing the cursor.
    fn get_u64_le(&mut self) -> u64 {
        let b = self.copy_to_bytes(8);
        u64::from_le_bytes(b.as_ref().try_into().expect("8 bytes"))
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "copy_to_bytes past end of buffer");
        let (head, tail) = self.split_at(len);
        let out = Bytes(head.to_vec());
        *self = tail;
        out
    }
}

/// An owned immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
    /// Length of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }
    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// A growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

/// A growable, owned byte buffer (a thin wrapper over `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self(Vec::new())
    }
    /// Creates an empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self(Vec::with_capacity(cap))
    }
    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
    /// Length of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }
    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Self {
        b.0
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, BytesMut};

    #[test]
    fn round_trip_little_endian() {
        let mut out = BytesMut::with_capacity(16);
        out.put_u32_le(0xdead_beef);
        out.put_u64_le(42);
        out.put_slice(b"xy");
        out.put_u8(7);
        let v = out.to_vec();
        let mut cursor: &[u8] = &v;
        assert_eq!(cursor.remaining(), 15);
        assert_eq!(cursor.get_u32_le(), 0xdead_beef);
        assert_eq!(cursor.get_u64_le(), 42);
        assert_eq!(cursor.copy_to_bytes(2).to_vec(), b"xy");
        let byte = cursor.copy_to_bytes(1);
        assert_eq!(byte.as_ref(), &[7]);
        assert!(!byte.is_empty());
        assert_eq!(cursor.remaining(), 0);
    }
}
