//! Offline stand-in for `criterion`.
//!
//! Provides [`Criterion`], benchmark groups, `criterion_group!`/
//! `criterion_main!` and a wall-clock [`Bencher`] so the workspace's benches
//! compile and produce real (if statistically unsophisticated) timings without
//! crates.io access. Each benchmark runs a short warm-up followed by
//! `sample_size` timed iterations and prints the mean per-iteration time, plus
//! throughput when configured.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark, used to derive rate numbers.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("ungrouped");
        group.bench_function(name, f);
        group.finish();
        self
    }
}

/// A named set of benchmarks sharing sample-size and throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark and prints its mean iteration time.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        let mean = if bencher.iters == 0 {
            Duration::ZERO
        } else {
            bencher.elapsed / bencher.iters as u32
        };
        let rate = match self.throughput {
            Some(Throughput::Bytes(b)) if !mean.is_zero() => {
                let mbps = b as f64 / mean.as_secs_f64() / (1024.0 * 1024.0);
                format!("  ({mbps:.1} MiB/s)")
            }
            Some(Throughput::Elements(e)) if !mean.is_zero() => {
                let eps = e as f64 / mean.as_secs_f64();
                format!("  ({eps:.0} elem/s)")
            }
            _ => String::new(),
        };
        eprintln!("  {}/{}: {mean:?}/iter{rate}", self.name, name.into());
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times closures on behalf of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording wall-clock time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Short warm-up, not timed.
        for _ in 0..2.min(self.samples) {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += self.samples;
    }
}

/// Declares a function that runs a list of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).throughput(Throughput::Bytes(1024));
        let mut runs = 0usize;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        // 2 warm-up + 3 timed iterations.
        assert_eq!(runs, 5);
    }
}
