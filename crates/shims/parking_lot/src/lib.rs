//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes [`Mutex`] and [`RwLock`] with parking_lot's panic-free API (no
//! `Result` on lock acquisition). Poisoning is transparently ignored, which
//! matches parking_lot's semantics of not poisoning at all.

#![warn(missing_docs)]

use std::sync;

/// A mutual-exclusion lock whose `lock` never returns an error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose acquisition methods never return an error.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps `value` in a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
