//! Collection strategies: sized vectors of generated elements.

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng;

/// A vector-length specification: an exact count or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Generates a `Vec` whose length is drawn from `size` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
