//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property suites
//! use: the [`Strategy`] trait with `prop_map`/`boxed`, [`strategy::any`] for primitive
//! types, integer/float range strategies, tuple strategies, sized vector
//! strategies ([`collection::vec`]), [`Just`], `prop_oneof!`, the `proptest!`
//! macro with `#![proptest_config(..)]`, and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Unlike real proptest there is no shrinking: each test runs a fixed number of
//! deterministically seeded cases (seeded from the test-function name and case
//! index), so failures reproduce exactly across runs — which is what the
//! repository's "fixed seeds, bounded runtime" testing policy asks for.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
pub mod strategy;

pub use strategy::{Any, BoxedStrategy, Just, Map, Strategy, Union};

/// The RNG handed to strategies while generating a case.
pub type TestRng = StdRng;

/// Why a generated case did not run to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; it is skipped, not failed.
    Reject,
    /// The case failed an assertion (carried message is already formatted).
    Fail(String),
}

/// Runner configuration; only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Maximum number of `prop_assume!` rejections tolerated before the runner
    /// gives up (mirrors proptest's `max_global_rejects`).
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_global_rejects: 1024,
        }
    }
}

/// Derives the deterministic RNG for one test case.
///
/// The seed mixes a FNV-1a hash of the property name with the case index, so
/// every property sees a distinct but fully reproducible input stream.
pub fn case_rng(test_name: &str, case: u64) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Everything a property-test file normally imports.
pub mod prelude {
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError,
    };
}

/// Defines property tests over generated inputs.
///
/// Supports the standard form: an optional `#![proptest_config(expr)]` inner
/// attribute followed by `#[test] fn name(pat in strategy, ...) { body }`
/// items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rejects: u32 = 0;
            let mut case: u64 = 0;
            let mut ran: u32 = 0;
            while ran < config.cases {
                if rejects > config.max_global_rejects {
                    panic!(
                        "proptest '{}': too many prop_assume! rejections ({rejects})",
                        stringify!($name),
                    );
                }
                let mut __rng = $crate::case_rng(stringify!($name), case);
                case += 1;
                $(let $pat = $crate::Strategy::generate(&$strat, &mut __rng);)+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => ran += 1,
                    Err($crate::TestCaseError::Reject) => rejects += 1,
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest '{}' failed at case {}: {msg}", stringify!($name), case - 1)
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Like `assert!`, failing the current case with the generated input's seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Like `assert_eq!`, failing the current case on mismatch.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: `left == right`\n  left: {l:?}\n right: {r:?}"),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `left == right`\n  left: {l:?}\n right: {r:?}\n note: {}",
                format!($($fmt)+),
            )));
        }
    }};
}

/// Like `assert_ne!`, failing the current case on equality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `left != right`\n  both: {l:?}"
            )));
        }
    }};
}

/// Chooses uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}
