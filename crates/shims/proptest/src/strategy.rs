//! Value-generation strategies: the [`Strategy`] trait and its combinators.

use crate::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A type with a canonical "generate any value" strategy.
pub trait Arbitrary {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// Generates any value of `T` (uniform over the type's representable values).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        use rand::RngCore;
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_range(-1.0e6f32..1.0e6)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_range(-1.0e12f64..1.0e12)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub struct BoxedStrategy<V>(Box<dyn ErasedStrategy<V>>);

impl<V> core::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

trait ErasedStrategy<V> {
    fn erased_generate(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn erased_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.erased_generate(rng)
    }
}

/// Uniform choice among same-valued strategies; built by `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over `arms`; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
