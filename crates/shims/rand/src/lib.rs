//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so this shim vendors the small
//! slice of the rand 0.8 API the workspace uses: the [`RngCore`]/[`Rng`]/
//! [`SeedableRng`] traits, uniform range sampling via [`Rng::gen_range`], and a
//! deterministic [`rngs::StdRng`] built on xoshiro256++ with SplitMix64 seeding.
//! Sequences are deterministic per seed (they do not match upstream `rand`
//! byte-for-byte, which no caller relies on).

#![warn(missing_docs)]

/// The core of a random number generator: raw integer and byte output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling conveniences layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (which must be in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a float uniform in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Uniform range sampling, mirroring `rand::distributions::uniform`.
pub mod distributions {
    /// The [`SampleRange`](uniform::SampleRange) trait and its implementations.
    pub mod uniform {
        use crate::RngCore;

        /// A range that can produce uniform samples of `T`.
        pub trait SampleRange<T> {
            /// Draws one sample from the range using `rng`.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty sample range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let r = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                        (self.start as i128 + (r % span) as i128) as $t
                    }
                }
                impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty sample range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        let r = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                        (lo as i128 + (r % span) as i128) as $t
                    }
                }
            )*};
        }
        int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! float_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty sample range");
                        let unit = crate::unit_f64(rng.next_u64()) as $t;
                        let v = self.start + unit * (self.end - self.start);
                        // Rounding (unit -> 1.0 in the narrower type, or the final
                        // multiply-add rounding up) can land exactly on `end`;
                        // the half-open contract excludes it.
                        if v < self.end {
                            v
                        } else {
                            self.end.next_down().max(self.start)
                        }
                    }
                }
                impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty sample range");
                        let unit = crate::unit_f64(rng.next_u64()) as $t;
                        (lo + unit * (hi - lo)).clamp(lo, hi)
                    }
                }
            )*};
        }
        float_range!(f32, f64);
    }
}

/// Concrete generator implementations.
pub mod rngs {
    use crate::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next_raw(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the full state, as
            // recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_raw() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.next_raw()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-0.5f32..=0.5);
            assert!((-0.5..=0.5).contains(&f));
            let i = rng.gen_range(-10i32..10);
            assert!((-10..10).contains(&i));
        }
    }

    #[test]
    fn float_gen_range_never_returns_the_exclusive_bound() {
        let mut rng = StdRng::seed_from_u64(5);
        // A one-ULP-wide range: the multiply-add rounds onto the bound roughly
        // half the time, which the clamp must redirect below it.
        let end = f32::from_bits(1.0f32.to_bits() + 1);
        for _ in 0..1000 {
            let v = rng.gen_range(1.0f32..end);
            assert!(v < end, "half-open float range returned its bound");
            let w = rng.gen_range(1.0f32..=end);
            assert!((1.0..=end).contains(&w));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
