//! Hardware cost models for the two evaluation servers of the Plinius paper.
//!
//! All costs are expressed in nanoseconds (per event) or nanoseconds per byte
//! (for bandwidth-bound operations). The two [`ServerProfile`]s correspond to the
//! machines used in the paper's evaluation (§VI): `SgxEmlPm` has real SGX hardware
//! but emulates PM with a Ramdisk, while `EmlSgxPm` has real Intel Optane DC PM but
//! runs SGX in simulation mode. The constants are calibrated so that the *relative*
//! results reported by the paper (speed-up factors, latency breakdowns, crossovers
//! at the EPC limit) are reproduced; absolute values are not meaningful without the
//! physical hardware.

use std::fmt;

/// Which of the paper's two evaluation servers a [`CostModel`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServerProfile {
    /// `sgx-emlPM`: real SGX (Xeon E3-1270 @ 3.80 GHz), PM emulated with Ramdisk.
    SgxEmlPm,
    /// `emlSGX-PM`: SGX in simulation mode (Xeon Gold 5215 @ 2.50 GHz), real Optane DC PM.
    EmlSgxPm,
}

impl fmt::Display for ServerProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerProfile::SgxEmlPm => write!(f, "sgx-emlPM"),
            ServerProfile::EmlSgxPm => write!(f, "emlSGX-PM"),
        }
    }
}

/// The kind of storage/memory device an access targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Byte-addressable persistent memory accessed via DAX / load-store.
    PersistentMemory,
    /// SATA/NVMe solid-state drive behind a conventional file system.
    Ssd,
    /// Volatile DRAM (or a tmpfs Ramdisk backed by DRAM).
    Dram,
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceKind::PersistentMemory => write!(f, "PM"),
            DeviceKind::Ssd => write!(f, "SSD"),
            DeviceKind::Dram => write!(f, "DRAM"),
        }
    }
}

/// Calibrated latency/bandwidth parameters for one evaluation server.
///
/// Construct one with [`CostModel::sgx_eml_pm`] or [`CostModel::eml_sgx_pm`], or build a
/// custom model by mutating the public fields of either.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Which server this model describes.
    pub profile: ServerProfile,
    /// CPU clock frequency in GHz, used to convert cycle counts to nanoseconds.
    pub cpu_ghz: f64,
    /// Whether enclave transitions / EPC paging penalties apply (real SGX hardware).
    pub sgx_hardware: bool,
    /// Whether the PM device is real Optane (true) or a DRAM-backed Ramdisk (false).
    pub pm_is_real: bool,
    /// Cycles consumed by one enclave transition (ecall or ocall). ~13'100 per the paper.
    pub enclave_transition_cycles: u64,
    /// Usable EPC size in bytes (93.5 MB on the paper's hardware).
    pub epc_usable_bytes: u64,
    /// Extra cost, per byte touched by in-enclave work, once the enclave working set
    /// exceeds the usable EPC (models EPC page swapping by the SGX kernel driver).
    pub epc_thrash_ns_per_byte: f64,
    /// In-enclave AES-GCM throughput (encryption and decryption), ns per byte.
    pub crypto_ns_per_byte: f64,
    /// Writing from the enclave to PM (store + interposed write-back), ns per byte.
    pub pm_write_ns_per_byte: f64,
    /// Reading from PM into enclave memory, ns per byte.
    pub pm_read_ns_per_byte: f64,
    /// Per cache-line flush (CLFLUSH/CLFLUSHOPT/CLWB) latency in ns.
    pub pm_flush_ns: u64,
    /// Persistence fence (SFENCE) latency in ns.
    pub pm_fence_ns: u64,
    /// Writing a checkpoint to SSD through ocalls + fwrite, ns per byte.
    pub ssd_write_ns_per_byte: f64,
    /// Reading a checkpoint from SSD into the enclave, ns per byte.
    pub ssd_read_ns_per_byte: f64,
    /// Fixed cost of an fsync on the SSD, in ns.
    pub ssd_fsync_ns: u64,
    /// DRAM copy bandwidth, ns per byte.
    pub dram_ns_per_byte: f64,
    /// Sequential SSD device bandwidth used by the FIO experiment, bytes/s.
    pub ssd_seq_bw_bytes_per_s: f64,
    /// Random-access SSD device bandwidth used by the FIO experiment, bytes/s.
    pub ssd_rand_bw_bytes_per_s: f64,
    /// PM (DAX) device bandwidth used by the FIO experiment, bytes/s.
    pub pm_dax_bw_bytes_per_s: f64,
    /// Ramdisk (tmpfs) bandwidth used by the FIO experiment, bytes/s.
    pub ramdisk_bw_bytes_per_s: f64,
    /// Effective training compute rate inside the enclave, FLOP/s.
    pub enclave_flops_per_s: f64,
    /// Per-byte cost of staging a training-data batch into the enclave (copy,
    /// batch assembly, EPC pressure) on top of decryption. Calibrated so that
    /// encrypted-data iterations are ~1.2x slower than plaintext ones (Fig. 8).
    pub enclave_data_staging_ns_per_byte: f64,
    /// Per-swap cost of the SPS benchmark for a native (non-enclave) run, ns.
    pub sps_native_swap_ns: f64,
    /// Multiplier applied to SPS per-swap cost when Romulus runs inside an SGX enclave.
    pub sps_sgx_factor: f64,
    /// Multiplier applied to SPS per-swap cost when Romulus runs in a SCONE container,
    /// for transactions whose volatile log still fits the container budget.
    pub sps_scone_factor: f64,
    /// Number of swaps per transaction beyond which the SCONE container's volatile log
    /// spills and per-swap cost degrades sharply.
    pub scone_log_spill_swaps: usize,
    /// Multiplier applied to SCONE per-swap cost once the volatile log has spilled.
    pub sps_scone_spill_factor: f64,
}

impl CostModel {
    /// Cost model for the paper's `sgx-emlPM` server: real SGX, Ramdisk-emulated PM.
    pub fn sgx_eml_pm() -> Self {
        CostModel {
            profile: ServerProfile::SgxEmlPm,
            cpu_ghz: 3.8,
            sgx_hardware: true,
            pm_is_real: false,
            enclave_transition_cycles: 13_100,
            epc_usable_bytes: (93.5 * 1024.0 * 1024.0) as u64,
            epc_thrash_ns_per_byte: 3.0,
            crypto_ns_per_byte: 0.50,
            pm_write_ns_per_byte: 0.05,
            pm_read_ns_per_byte: 1.50,
            pm_flush_ns: 5,
            pm_fence_ns: 30,
            ssd_write_ns_per_byte: 2.00,
            ssd_read_ns_per_byte: 4.50,
            ssd_fsync_ns: 1_000_000,
            dram_ns_per_byte: 0.10,
            ssd_seq_bw_bytes_per_s: 0.52e9,
            ssd_rand_bw_bytes_per_s: 0.30e9,
            pm_dax_bw_bytes_per_s: 2.2e9,
            ramdisk_bw_bytes_per_s: 6.5e9,
            enclave_flops_per_s: 5.0e9,
            enclave_data_staging_ns_per_byte: 110.0,
            sps_native_swap_ns: 25.0,
            sps_sgx_factor: 2.6,
            sps_scone_factor: 3.6,
            scone_log_spill_swaps: 64,
            sps_scone_spill_factor: 4.5,
        }
    }

    /// Cost model for the paper's `emlSGX-PM` server: simulated SGX, real Optane DC PM.
    pub fn eml_sgx_pm() -> Self {
        CostModel {
            profile: ServerProfile::EmlSgxPm,
            cpu_ghz: 2.5,
            sgx_hardware: false,
            pm_is_real: true,
            enclave_transition_cycles: 250,
            epc_usable_bytes: (93.5 * 1024.0 * 1024.0) as u64,
            epc_thrash_ns_per_byte: 0.0,
            crypto_ns_per_byte: 0.29,
            pm_write_ns_per_byte: 0.15,
            pm_read_ns_per_byte: 0.0625,
            pm_flush_ns: 12,
            pm_fence_ns: 40,
            ssd_write_ns_per_byte: 3.00,
            ssd_read_ns_per_byte: 1.05,
            ssd_fsync_ns: 1_200_000,
            dram_ns_per_byte: 0.08,
            ssd_seq_bw_bytes_per_s: 0.50e9,
            ssd_rand_bw_bytes_per_s: 0.28e9,
            pm_dax_bw_bytes_per_s: 1.8e9,
            ramdisk_bw_bytes_per_s: 7.0e9,
            enclave_flops_per_s: 6.0e9,
            enclave_data_staging_ns_per_byte: 95.0,
            sps_native_swap_ns: 38.0,
            sps_sgx_factor: 1.15,
            sps_scone_factor: 1.35,
            scone_log_spill_swaps: 64,
            sps_scone_spill_factor: 4.0,
        }
    }

    /// Returns the model for a given [`ServerProfile`].
    pub fn for_profile(profile: ServerProfile) -> Self {
        match profile {
            ServerProfile::SgxEmlPm => Self::sgx_eml_pm(),
            ServerProfile::EmlSgxPm => Self::eml_sgx_pm(),
        }
    }

    /// Both server profiles, in the order the paper presents them.
    pub fn both_servers() -> [Self; 2] {
        [Self::sgx_eml_pm(), Self::eml_sgx_pm()]
    }

    /// Converts a cycle count into nanoseconds at this model's clock frequency.
    pub fn cycles_to_ns(&self, cycles: u64) -> u64 {
        (cycles as f64 / self.cpu_ghz).round() as u64
    }

    /// Cost of one enclave transition (ecall or ocall) in nanoseconds.
    pub fn enclave_transition_ns(&self) -> u64 {
        self.cycles_to_ns(self.enclave_transition_cycles)
    }

    /// EPC paging penalty for `bytes` of in-enclave work given the current enclave
    /// working set. Returns zero when SGX is simulated or the working set fits in EPC.
    pub fn epc_paging_penalty_ns(&self, bytes: u64, working_set_bytes: u64) -> u64 {
        if !self.sgx_hardware || working_set_bytes <= self.epc_usable_bytes {
            0
        } else {
            (bytes as f64 * self.epc_thrash_ns_per_byte).round() as u64
        }
    }

    /// In-enclave AES-GCM cost (encrypt or decrypt) for `bytes`, including the EPC
    /// paging penalty for the given enclave working set.
    pub fn crypto_ns(&self, bytes: u64, working_set_bytes: u64) -> u64 {
        (bytes as f64 * self.crypto_ns_per_byte).round() as u64
            + self.epc_paging_penalty_ns(bytes, working_set_bytes)
    }

    /// Cost of writing `bytes` from the enclave into PM (stores + interposed write-backs).
    pub fn pm_write_ns(&self, bytes: u64) -> u64 {
        (bytes as f64 * self.pm_write_ns_per_byte).round() as u64
    }

    /// End-to-end cost per byte of persisting data through a Romulus transaction: the
    /// store + cache-line write-back into the *main* region plus the copy of the logged
    /// range into the *back* region at commit (Romulus' 2x write amplification). This is
    /// the "Write (PM)" component of a Plinius mirror-out in Fig. 7 / Table I.
    pub fn pm_mirror_write_ns(&self, bytes: u64) -> u64 {
        let per_byte = self.pm_write_ns_per_byte + self.pm_flush_ns as f64 / 64.0;
        (2.0 * per_byte * bytes as f64).round() as u64
    }

    /// Cost of reading `bytes` from PM into enclave memory, including the EPC paging
    /// penalty for the given enclave working set.
    pub fn pm_read_ns(&self, bytes: u64, working_set_bytes: u64) -> u64 {
        (bytes as f64 * self.pm_read_ns_per_byte).round() as u64
            + self.epc_paging_penalty_ns(bytes, working_set_bytes)
    }

    /// Cost of writing `bytes` of checkpoint data to the SSD (ocall + fwrite), excluding
    /// the final fsync.
    pub fn ssd_write_ns(&self, bytes: u64) -> u64 {
        (bytes as f64 * self.ssd_write_ns_per_byte).round() as u64
    }

    /// Cost of reading `bytes` of checkpoint data from the SSD into the enclave,
    /// including the EPC paging penalty for the given enclave working set.
    pub fn ssd_read_ns(&self, bytes: u64, working_set_bytes: u64) -> u64 {
        (bytes as f64 * self.ssd_read_ns_per_byte).round() as u64
            + self.epc_paging_penalty_ns(bytes, working_set_bytes)
    }

    /// Cost of one fsync to the SSD.
    pub fn ssd_fsync(&self) -> u64 {
        self.ssd_fsync_ns
    }

    /// Cost of copying `bytes` within DRAM (untrusted memory).
    pub fn dram_copy_ns(&self, bytes: u64) -> u64 {
        (bytes as f64 * self.dram_ns_per_byte).round() as u64
    }

    /// Cost of executing `flops` floating-point operations inside the enclave.
    pub fn enclave_compute_ns(&self, flops: u64) -> u64 {
        (flops as f64 / self.enclave_flops_per_s * 1e9).round() as u64
    }

    /// Cost of staging `bytes` of training data into the enclave (excluding decryption).
    pub fn data_staging_ns(&self, bytes: u64) -> u64 {
        (bytes as f64 * self.enclave_data_staging_ns_per_byte).round() as u64
    }

    /// Raw device bandwidth (bytes/s) used by the FIO-style experiment of Fig. 2.
    pub fn fio_bandwidth(&self, device: DeviceKind, sequential: bool) -> f64 {
        match device {
            DeviceKind::Ssd => {
                if sequential {
                    self.ssd_seq_bw_bytes_per_s
                } else {
                    self.ssd_rand_bw_bytes_per_s
                }
            }
            DeviceKind::PersistentMemory => self.pm_dax_bw_bytes_per_s,
            DeviceKind::Dram => self.ramdisk_bw_bytes_per_s,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::sgx_eml_pm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn transition_matches_paper_cycles() {
        let m = CostModel::sgx_eml_pm();
        // 13'100 cycles at 3.8 GHz is roughly 3.45 microseconds.
        let ns = m.enclave_transition_ns();
        assert!((3_300..3_600).contains(&ns), "got {ns}");
    }

    #[test]
    fn no_paging_penalty_below_epc() {
        let m = CostModel::sgx_eml_pm();
        assert_eq!(m.epc_paging_penalty_ns(10 * MB, 50 * MB), 0);
    }

    #[test]
    fn paging_penalty_above_epc_only_with_real_sgx() {
        let hw = CostModel::sgx_eml_pm();
        let sim = CostModel::eml_sgx_pm();
        let ws = 120 * MB;
        assert!(hw.epc_paging_penalty_ns(10 * MB, ws) > 0);
        assert_eq!(sim.epc_paging_penalty_ns(10 * MB, ws), 0);
    }

    #[test]
    fn save_breakdown_below_epc_encryption_dominates_on_real_sgx() {
        // Table Ia: on sgx-emlPM encryption is ~66% of a mirror-out below the EPC limit.
        let m = CostModel::sgx_eml_pm();
        let bytes = 50 * MB;
        let enc = m.crypto_ns(bytes, bytes) as f64;
        let write = m.pm_mirror_write_ns(bytes) as f64;
        let frac = enc / (enc + write);
        assert!((0.58..0.75).contains(&frac), "encrypt fraction {frac}");
    }

    #[test]
    fn save_breakdown_beyond_epc_jumps_past_ninety_percent() {
        let m = CostModel::sgx_eml_pm();
        let bytes = 100 * MB;
        let enc = m.crypto_ns(bytes, bytes) as f64;
        let write = m.pm_mirror_write_ns(bytes) as f64;
        let frac = enc / (enc + write);
        assert!(frac > 0.88, "encrypt fraction {frac}");
    }

    #[test]
    fn pm_write_beats_ssd_write_by_large_factor() {
        // Table Ib: writes to PM are ~7.9x faster than writes to SSD on sgx-emlPM.
        let m = CostModel::sgx_eml_pm();
        let bytes = 50 * MB;
        let speedup = m.ssd_write_ns(bytes) as f64 / m.pm_mirror_write_ns(bytes) as f64;
        assert!(speedup > 5.0 && speedup < 12.0, "speedup {speedup}");
    }

    #[test]
    fn restore_read_fraction_small_on_real_pm() {
        // Table Ia (emlSGX-PM): reads are ~18% of a restore, decryption dominates.
        let m = CostModel::eml_sgx_pm();
        let bytes = 50 * MB;
        let read = m.pm_read_ns(bytes, bytes) as f64;
        let dec = m.crypto_ns(bytes, bytes) as f64;
        let frac = read / (read + dec);
        assert!((0.10..0.30).contains(&frac), "read fraction {frac}");
    }

    #[test]
    fn fio_pm_dax_faster_than_ssd_slower_than_ramdisk() {
        let m = CostModel::sgx_eml_pm();
        let ssd = m.fio_bandwidth(DeviceKind::Ssd, true);
        let pm = m.fio_bandwidth(DeviceKind::PersistentMemory, true);
        let ram = m.fio_bandwidth(DeviceKind::Dram, true);
        assert!(pm > ssd);
        assert!(ram > pm);
    }

    #[test]
    fn profiles_display_like_paper() {
        assert_eq!(ServerProfile::SgxEmlPm.to_string(), "sgx-emlPM");
        assert_eq!(ServerProfile::EmlSgxPm.to_string(), "emlSGX-PM");
        assert_eq!(DeviceKind::PersistentMemory.to_string(), "PM");
    }

    #[test]
    fn for_profile_round_trips() {
        for p in [ServerProfile::SgxEmlPm, ServerProfile::EmlSgxPm] {
            assert_eq!(CostModel::for_profile(p).profile, p);
        }
        let both = CostModel::both_servers();
        assert_eq!(both[0].profile, ServerProfile::SgxEmlPm);
        assert_eq!(both[1].profile, ServerProfile::EmlSgxPm);
    }

    #[test]
    fn compute_cost_scales_linearly() {
        let m = CostModel::sgx_eml_pm();
        let one = m.enclave_compute_ns(1_000_000);
        let ten = m.enclave_compute_ns(10_000_000);
        assert!(ten >= 9 * one && ten <= 11 * one);
    }
}
