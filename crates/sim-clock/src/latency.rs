//! Latency percentile accounting for simulated request streams.
//!
//! Serving benchmarks record one latency sample per request — potentially millions
//! per run — so storing every sample and sorting is out of the question. The
//! [`LatencyHistogram`] uses HdrHistogram-style log-linear buckets: values below
//! [`SUBBUCKETS`] are counted exactly, and every power-of-two range above that is
//! split into `SUBBUCKETS / 2` linear sub-buckets, bounding the relative
//! quantisation error of any reported percentile to `2 / SUBBUCKETS` (≈ 3 %)
//! while keeping the whole structure a few KiB, allocation-free after construction
//! and strictly deterministic (bucket placement depends only on the recorded
//! value, never on insertion order or thread timing).

use std::fmt;

/// Size of the exact linear head; each power-of-two range above it holds
/// `SUBBUCKETS / 2` sub-buckets, so the relative quantisation error of a
/// percentile is at most `2 / SUBBUCKETS`.
pub const SUBBUCKETS: u64 = 64;

const SUB_BITS: u32 = SUBBUCKETS.trailing_zeros();

/// Number of log-linear ranges above the linear head that cover the full `u64`
/// nanosecond domain (the top bit position is 63, the head covers bits below
/// `SUB_BITS`).
const RANGES: usize = (64 - SUB_BITS) as usize;

/// Total bucket count: the linear head (`SUBBUCKETS`) plus `SUBBUCKETS / 2` per
/// log-linear range.
const BUCKETS: usize = (RANGES + 2) * (SUBBUCKETS as usize / 2);

/// A log-linear histogram of nanosecond latency samples with percentile queries.
///
/// # Example
///
/// ```
/// use sim_clock::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for ns in 1..=1000u64 {
///     h.record(ns);
/// }
/// let summary = h.summary();
/// assert_eq!(summary.count, 1000);
/// assert_eq!(summary.max_ns, 1000);
/// // Percentile bounds are exact to one sub-bucket (~3 % relative error).
/// assert!(summary.p50_ns >= 500 && summary.p50_ns <= 508);
/// assert!(summary.p99_ns >= 990 && summary.p99_ns <= 1008);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// `BUCKETS` counts; values below `SUBBUCKETS` land in the linear head
    /// exactly, larger values in their log-linear bucket.
    buckets: Vec<u64>,
    count: u64,
    total_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Index of the bucket covering `ns`. Values in `[0, SUBBUCKETS)` map linearly;
/// beyond that, the high bit picks the power-of-two range and the next
/// `SUB_BITS - 1` bits pick the sub-bucket within it, so each range holds
/// `SUBBUCKETS / 2` buckets of width `2^range`.
fn bucket_index(ns: u64) -> usize {
    if ns < SUBBUCKETS {
        return ns as usize;
    }
    let range = (63 - ns.leading_zeros()) - SUB_BITS + 1;
    let sub = (ns >> range) - SUBBUCKETS / 2;
    (range as usize + 1) * (SUBBUCKETS as usize / 2) + sub as usize
}

/// Inclusive upper bound of the values mapping to bucket index `bucket` (the
/// value a percentile query reports).
fn bucket_upper_bound(bucket: usize) -> u64 {
    let b = bucket as u64;
    if b < SUBBUCKETS {
        return b;
    }
    let range = b / (SUBBUCKETS / 2) - 1;
    let sub = b % (SUBBUCKETS / 2) + SUBBUCKETS / 2;
    ((sub + 1) << range) - 1
}

impl LatencyHistogram {
    /// An empty histogram covering the full `u64` nanosecond range.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0u64; BUCKETS],
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, ns: u64) {
        self.buckets[bucket_index(ns)] += 1;
        self.count += 1;
        self.total_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all recorded samples, zero when empty.
    pub fn mean_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.total_ns / self.count as u128) as u64
        }
    }

    /// Smallest recorded sample, zero when empty.
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Largest recorded sample (exact, not quantised).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// The value at or below which `quantile` (in `[0, 1]`) of the samples fall:
    /// the upper bound of the first bucket whose cumulative count reaches
    /// `ceil(quantile * count)`. Zero when the histogram is empty. The reported
    /// bound is within one sub-bucket (`2 / SUBBUCKETS` relative) of the exact
    /// order statistic, and never above the recorded maximum.
    pub fn percentile(&self, quantile: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((quantile.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Merges another histogram into this one (used to aggregate per-rate runs).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// The fixed percentile digest reported by the serving benchmarks.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean_ns: self.mean_ns(),
            min_ns: self.min_ns(),
            p50_ns: self.percentile(0.50),
            p90_ns: self.percentile(0.90),
            p99_ns: self.percentile(0.99),
            max_ns: self.max_ns(),
        }
    }
}

/// Percentile digest of a latency distribution (all values in simulated
/// nanoseconds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Mean latency.
    pub mean_ns: u64,
    /// Minimum latency.
    pub min_ns: u64,
    /// Median latency (upper bucket bound).
    pub p50_ns: u64,
    /// 90th-percentile latency (upper bucket bound).
    pub p90_ns: u64,
    /// 99th-percentile latency (upper bucket bound).
    pub p99_ns: u64,
    /// Maximum latency (exact).
    pub max_ns: u64,
}

impl fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "p50 {:.3} ms, p90 {:.3} ms, p99 {:.3} ms, max {:.3} ms ({} samples)",
            self.p50_ns as f64 / 1e6,
            self.p90_ns as f64 / 1e6,
            self.p99_ns as f64 / 1e6,
            self.max_ns as f64 / 1e6,
            self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.summary(), LatencySummary::default());
    }

    #[test]
    fn small_values_are_exact() {
        // Values below SUBBUCKETS land in dedicated linear buckets: percentiles
        // of a small-value distribution are exact order statistics.
        let mut h = LatencyHistogram::new();
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.5), 5);
        assert_eq!(h.percentile(1.0), 10);
        assert_eq!(h.percentile(0.0), 1);
        assert_eq!(h.min_ns(), 1);
        assert_eq!(h.max_ns(), 10);
        assert_eq!(h.mean_ns(), 5);
    }

    #[test]
    fn bucket_round_trip_bounds_every_value() {
        // Every value maps to a bucket whose upper bound is >= the value and
        // within 2/SUBBUCKETS relative error.
        for shift in 0..60 {
            for base in [1u64, 3, 7] {
                let v = base << shift;
                let ub = bucket_upper_bound(bucket_index(v));
                assert!(ub >= v, "upper bound {ub} < value {v}");
                assert!(
                    (ub - v) as f64 <= (2.0 * v as f64 / SUBBUCKETS as f64) + 1.0,
                    "bucket too coarse: value {v}, bound {ub}"
                );
            }
        }
    }

    #[test]
    fn buckets_are_monotonic() {
        let mut last = 0usize;
        let mut checked = 0u64;
        for v in (0..1_000_000u64).step_by(997) {
            let b = bucket_index(v);
            assert!(b >= last, "bucket index regressed at {v}");
            last = b;
            checked += 1;
        }
        assert!(checked > 100);
    }

    #[test]
    fn percentiles_are_within_one_subbucket_of_exact() {
        let mut h = LatencyHistogram::new();
        let samples: Vec<u64> = (0..10_000u64).map(|i| 1_000 + i * 137).collect();
        for &s in &samples {
            h.record(s);
        }
        for q in [0.5, 0.9, 0.99] {
            let exact = samples[((q * samples.len() as f64).ceil() as usize - 1).min(9999)];
            let got = h.percentile(q);
            assert!(got >= exact, "q{q}: {got} < exact {exact}");
            assert!(
                (got - exact) as f64 <= 2.0 * exact as f64 / SUBBUCKETS as f64 + 1.0,
                "q{q}: {got} too far above exact {exact}"
            );
        }
        // The tail never exceeds the true maximum.
        assert_eq!(h.percentile(1.0), *samples.last().unwrap());
    }

    #[test]
    fn merge_is_equivalent_to_recording_everything_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for i in 0..500u64 {
            let v = 10 + i * 31;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.summary(), whole.summary());
    }

    #[test]
    fn summary_display_mentions_percentiles() {
        let mut h = LatencyHistogram::new();
        h.record(2_000_000);
        let s = h.summary().to_string();
        assert!(s.contains("p50") && s.contains("p99"), "{s}");
    }
}
