//! Simulation clock and hardware cost models shared by every substrate of the
//! Plinius reproduction.
//!
//! The original Plinius evaluation (DSN'21) ran on two physical servers:
//!
//! * **sgx-emlPM** — real Intel SGX, persistent memory *emulated* with a Ramdisk
//!   (quad-core Xeon E3-1270 @ 3.80 GHz);
//! * **emlSGX-PM** — real Intel Optane DC persistent memory, SGX run in
//!   *simulation mode* (dual-socket Xeon Gold 5215 @ 2.50 GHz).
//!
//! Neither SGX hardware nor Optane DIMMs are available to this reproduction, so all
//! latency-relevant hardware effects are *modeled*: every component (enclave runtime,
//! persistent-memory device, SSD, crypto engine, training loop) charges a modeled cost
//! to a shared [`SimClock`], parameterised by a [`CostModel`] that encodes one of the two
//! server profiles. Functional behaviour (which bytes land where, what survives a crash,
//! what the loss curve looks like) is always real; only *time* is simulated.
//!
//! # Example
//!
//! ```
//! use sim_clock::{CostModel, SimClock};
//!
//! let clock = SimClock::new();
//! let model = CostModel::sgx_eml_pm();
//! // Charge the cost of one enclave transition (ecall or ocall).
//! clock.advance_ns(model.enclave_transition_ns());
//! assert!(clock.now_ns() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

pub mod cost;
pub mod latency;
pub mod stats;

pub use cost::{CostModel, DeviceKind, ServerProfile};
pub use latency::{LatencyHistogram, LatencySummary};
pub use stats::{Counter, StatsHandle, StatsRegistry};

/// A monotonically increasing simulated nanosecond counter.
///
/// The clock is cheap to clone through [`ClockHandle`] (an `Arc`); all substrates of a
/// simulation share one instance so that modeled latencies compose additively.
#[derive(Debug, Default)]
pub struct SimClock {
    ns: AtomicU64,
}

/// Shared handle to a [`SimClock`].
pub type ClockHandle = Arc<SimClock>;

impl SimClock {
    /// Creates a new clock starting at zero, wrapped in an [`Arc`] for sharing.
    pub fn new() -> ClockHandle {
        Arc::new(SimClock {
            ns: AtomicU64::new(0),
        })
    }

    /// Advances the clock by `ns` simulated nanoseconds and returns the new time.
    pub fn advance_ns(&self, ns: u64) -> u64 {
        self.ns.fetch_add(ns, Ordering::Relaxed) + ns
    }

    /// Advances the clock by a [`Duration`].
    pub fn advance(&self, d: Duration) -> u64 {
        self.advance_ns(d.as_nanos() as u64)
    }

    /// Returns the current simulated time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }

    /// Advances the clock to `target_ns` if it is still behind that instant, and
    /// returns the (possibly unchanged) current time. The clock never moves backwards:
    /// a target in the past is a no-op.
    ///
    /// This is the building block of parallel-lane accounting (see
    /// [`SimSpan::overlap`]): a lane that forked at `f` and consumed `d` simulated
    /// nanoseconds joins with `advance_to(f + d)`, charging only the part of the lane
    /// that was *not* hidden behind work already charged to the clock.
    pub fn advance_to(&self, target_ns: u64) -> u64 {
        let mut current = self.ns.load(Ordering::Relaxed);
        while current < target_ns {
            match self.ns.compare_exchange_weak(
                current,
                target_ns,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return target_ns,
                Err(observed) => current = observed,
            }
        }
        current
    }

    /// Returns the current simulated time as a [`Duration`].
    pub fn now(&self) -> Duration {
        Duration::from_nanos(self.now_ns())
    }

    /// Resets the clock back to zero.
    ///
    /// Useful between benchmark repetitions so that each measurement starts from a
    /// clean baseline.
    pub fn reset(&self) {
        self.ns.store(0, Ordering::Relaxed);
    }

    /// Runs `f` and returns the simulated nanoseconds it charged to this clock,
    /// together with its return value.
    pub fn measure<T>(&self, f: impl FnOnce() -> T) -> (T, u64) {
        let start = self.now_ns();
        let out = f();
        (out, self.now_ns() - start)
    }
}

impl fmt::Display for SimClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6} s (simulated)", self.now_ns() as f64 / 1e9)
    }
}

/// A span measured on a [`SimClock`]: start time, end time and helper accessors.
///
/// Harness binaries use spans to report per-phase breakdowns (e.g. "encrypt" vs
/// "write to PM" inside a mirror-out).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimSpan {
    /// Simulated start time in nanoseconds.
    pub start_ns: u64,
    /// Simulated end time in nanoseconds.
    pub end_ns: u64,
}

impl SimSpan {
    /// Measures the simulated time consumed by `f` on `clock`.
    pub fn record<T>(clock: &SimClock, f: impl FnOnce() -> T) -> (T, SimSpan) {
        let start_ns = clock.now_ns();
        let out = f();
        let end_ns = clock.now_ns();
        (out, SimSpan { start_ns, end_ns })
    }

    /// Parallel-lane accounting: joins a lane that forked from the main timeline at
    /// `fork_ns` and consumed `lane_ns` of simulated time *in parallel* with whatever
    /// has been charged to `clock` since the fork.
    ///
    /// The clock is advanced to `fork_ns + lane_ns` only if it is still behind that
    /// instant — i.e. the join charges `max(main lane, parallel lane)` rather than
    /// their sum, which is exactly the overlap model of a pipelined save: work hidden
    /// behind compute costs nothing, and only the *residual* (the part of the lane
    /// that outlived the main-lane work) shows up as simulated time.
    ///
    /// The returned span covers the join itself; its [`SimSpan::nanos`] is the
    /// residual charge (zero when the lane was fully hidden). The accounting is
    /// deterministic: it depends only on `fork_ns`, `lane_ns` and the charges made to
    /// the clock between fork and join, never on wall-clock thread scheduling.
    pub fn overlap(clock: &SimClock, fork_ns: u64, lane_ns: u64) -> SimSpan {
        let start_ns = clock.now_ns();
        let end_ns = clock.advance_to(fork_ns.saturating_add(lane_ns));
        SimSpan { start_ns, end_ns }
    }

    /// Span length in nanoseconds.
    pub fn nanos(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Span length in (fractional) milliseconds.
    pub fn millis(&self) -> f64 {
        self.nanos() as f64 / 1e6
    }

    /// Span length as a [`Duration`].
    pub fn duration(&self) -> Duration {
        Duration::from_nanos(self.nanos())
    }
}

impl fmt::Display for SimSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ms", self.millis())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero() {
        let clock = SimClock::new();
        assert_eq!(clock.now_ns(), 0);
        assert_eq!(clock.now(), Duration::ZERO);
    }

    #[test]
    fn advance_accumulates() {
        let clock = SimClock::new();
        clock.advance_ns(10);
        clock.advance_ns(32);
        assert_eq!(clock.now_ns(), 42);
    }

    #[test]
    fn advance_duration() {
        let clock = SimClock::new();
        clock.advance(Duration::from_micros(3));
        assert_eq!(clock.now_ns(), 3_000);
    }

    #[test]
    fn reset_zeroes_clock() {
        let clock = SimClock::new();
        clock.advance_ns(1_000);
        clock.reset();
        assert_eq!(clock.now_ns(), 0);
    }

    #[test]
    fn measure_reports_charged_time() {
        let clock = SimClock::new();
        let (value, spent) = clock.measure(|| {
            clock.advance_ns(500);
            7
        });
        assert_eq!(value, 7);
        assert_eq!(spent, 500);
    }

    #[test]
    fn span_records_interval() {
        let clock = SimClock::new();
        clock.advance_ns(100);
        let ((), span) = SimSpan::record(&clock, || {
            clock.advance_ns(250);
        });
        assert_eq!(span.start_ns, 100);
        assert_eq!(span.end_ns, 350);
        assert_eq!(span.nanos(), 250);
        assert!((span.millis() - 0.00025).abs() < 1e-12);
    }

    #[test]
    fn advance_to_is_monotonic() {
        let clock = SimClock::new();
        clock.advance_ns(100);
        // Target in the future: the clock jumps to it.
        assert_eq!(clock.advance_to(250), 250);
        assert_eq!(clock.now_ns(), 250);
        // Target in the past: no-op, never rewinds.
        assert_eq!(clock.advance_to(50), 250);
        assert_eq!(clock.now_ns(), 250);
        // Target at the present: no-op.
        assert_eq!(clock.advance_to(250), 250);
    }

    #[test]
    fn overlap_charges_only_the_residual_lane_time() {
        // Lane forks at 100 with 300 ns of work; the main lane charges 200 ns before
        // the join. The join must add only the 100 ns the lane was NOT hidden.
        let clock = SimClock::new();
        clock.advance_ns(100);
        let fork = clock.now_ns();
        clock.advance_ns(200); // main-lane work between fork and join
        let span = SimSpan::overlap(&clock, fork, 300);
        assert_eq!(span.nanos(), 100);
        assert_eq!(clock.now_ns(), 400); // fork + max(200, 300)
    }

    #[test]
    fn overlap_is_free_when_the_lane_is_fully_hidden() {
        let clock = SimClock::new();
        let fork = clock.now_ns();
        clock.advance_ns(500); // main lane dominates
        let span = SimSpan::overlap(&clock, fork, 300);
        assert_eq!(span.nanos(), 0);
        assert_eq!(clock.now_ns(), 500); // max(500, 300), not 800
    }

    #[test]
    fn overlap_with_no_main_lane_work_charges_the_whole_lane() {
        let clock = SimClock::new();
        clock.advance_ns(42);
        let fork = clock.now_ns();
        let span = SimSpan::overlap(&clock, fork, 1_000);
        assert_eq!(span.nanos(), 1_000);
        assert_eq!(clock.now_ns(), 1_042);
    }

    #[test]
    fn clock_is_shared_across_threads() {
        let clock = SimClock::new();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&clock);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.advance_ns(1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(clock.now_ns(), 4_000);
    }

    #[test]
    fn display_formats_seconds() {
        let clock = SimClock::new();
        clock.advance_ns(1_500_000_000);
        assert_eq!(format!("{clock}"), "1.500000 s (simulated)");
    }
}
