//! Lightweight named counters used by the substrates to expose event statistics
//! (enclave transitions, EPC page swaps, cache-line flushes, fsyncs, bytes moved).
//!
//! Harness binaries read these counters to report the breakdowns of Table I and to
//! sanity-check that the simulated code paths actually executed (e.g. that an
//! SSD checkpoint really issued an `fsync` per write).

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A single monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Arc<Self> {
        Arc::new(Counter::default())
    }

    /// Increments the counter by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Returns the current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.get())
    }
}

/// A registry of named [`Counter`]s shared across simulation components.
///
/// # Example
///
/// ```
/// use sim_clock::StatsRegistry;
///
/// let stats = StatsRegistry::new();
/// stats.counter("ecalls").incr();
/// stats.counter("ecalls").add(2);
/// assert_eq!(stats.value("ecalls"), 3);
/// assert_eq!(stats.value("never-touched"), 0);
/// ```
#[derive(Debug, Default)]
pub struct StatsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
}

/// Shared handle to a [`StatsRegistry`].
pub type StatsHandle = Arc<StatsRegistry>;

impl StatsRegistry {
    /// Creates an empty registry wrapped in an [`Arc`].
    pub fn new() -> StatsHandle {
        Arc::new(StatsRegistry::default())
    }

    /// Returns (creating on first use) the counter with the given name.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        let mut guard = self.counters.write();
        Arc::clone(guard.entry(name.to_owned()).or_default())
    }

    /// Convenience: current value of a counter, zero if it was never created.
    pub fn value(&self, name: &str) -> u64 {
        self.counters.read().get(name).map(|c| c.get()).unwrap_or(0)
    }

    /// Resets every counter in the registry to zero.
    pub fn reset_all(&self) {
        for c in self.counters.read().values() {
            c.reset();
        }
    }

    /// Returns a snapshot of every counter, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }
}

impl fmt::Display for StatsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in self.snapshot() {
            writeln!(f, "{name}: {value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        c.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(c.to_string(), "0");
    }

    #[test]
    fn registry_returns_same_counter_for_same_name() {
        let stats = StatsRegistry::new();
        let a = stats.counter("flushes");
        let b = stats.counter("flushes");
        a.add(5);
        assert_eq!(b.get(), 5);
        assert_eq!(stats.value("flushes"), 5);
    }

    #[test]
    fn unknown_counter_reads_zero() {
        let stats = StatsRegistry::new();
        assert_eq!(stats.value("missing"), 0);
    }

    #[test]
    fn reset_all_clears_everything() {
        let stats = StatsRegistry::new();
        stats.counter("a").add(1);
        stats.counter("b").add(2);
        stats.reset_all();
        assert_eq!(stats.value("a"), 0);
        assert_eq!(stats.value("b"), 0);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let stats = StatsRegistry::new();
        stats.counter("zeta").add(1);
        stats.counter("alpha").add(2);
        let snap = stats.snapshot();
        assert_eq!(snap[0].0, "alpha");
        assert_eq!(snap[1].0, "zeta");
        assert!(stats.to_string().contains("alpha: 2"));
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let stats = StatsRegistry::new();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&stats);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1_000 {
                    s.counter("shared").incr();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(stats.value("shared"), 8_000);
    }
}
