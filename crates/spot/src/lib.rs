//! # plinius-spot
//!
//! AWS EC2 spot-instance price traces and the bid-driven kill/restart simulator used by
//! the paper's Fig. 10 experiment ("Plinius on AWS EC2 Spot instances").
//!
//! The paper replays real spot-market traces from Wang et al. (TOMPECS'18): every five
//! minutes the market price is compared against a fixed maximum bid; the training process
//! runs while `max_bid > market_price` and is killed otherwise. Real traces are not
//! redistributable here, so this crate provides (a) a CSV parser for traces the user
//! supplies and (b) a statistically similar synthetic trace generator; both feed the same
//! [`SpotSimulator`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::Rng;
use std::error::Error;
use std::fmt;

/// Interval between consecutive trace points, in minutes (the paper's traces are sampled
/// every 5 minutes).
pub const TRACE_STEP_MINUTES: u64 = 5;

/// Errors produced when parsing spot traces.
#[derive(Debug, Clone, PartialEq)]
pub enum SpotError {
    /// A CSV line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// The trace contains no data points.
    EmptyTrace,
}

impl fmt::Display for SpotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpotError::Parse { line, content } => {
                write!(f, "cannot parse trace line {line}: '{content}'")
            }
            SpotError::EmptyTrace => write!(f, "spot trace contains no data points"),
        }
    }
}

impl Error for SpotError {}

/// A spot-market price trace: one price per [`TRACE_STEP_MINUTES`]-minute step.
#[derive(Debug, Clone, PartialEq)]
pub struct SpotTrace {
    prices: Vec<f64>,
}

impl SpotTrace {
    /// Wraps a price series.
    ///
    /// Every price must be finite and non-negative: a NaN price would make every
    /// bid comparison (`max_bid > price`) false, so preempted minutes would
    /// silently count as available in [`SpotSimulator::state_curve`] and
    /// [`SpotSimulator::availability`].
    ///
    /// # Errors
    ///
    /// Returns [`SpotError::EmptyTrace`] if `prices` is empty, or
    /// [`SpotError::Parse`] (with the 1-based index of the offending price) if any
    /// price is NaN, infinite, or negative.
    pub fn new(prices: Vec<f64>) -> Result<Self, SpotError> {
        if prices.is_empty() {
            return Err(SpotError::EmptyTrace);
        }
        for (i, &p) in prices.iter().enumerate() {
            if !p.is_finite() || p < 0.0 {
                return Err(SpotError::Parse {
                    line: i + 1,
                    content: format!("invalid price {p}"),
                });
            }
        }
        Ok(SpotTrace { prices })
    }

    /// Parses a trace from CSV text. Each non-empty line is either `price` or
    /// `timestamp,price`; lines starting with `#` are comments.
    ///
    /// # Errors
    ///
    /// Returns [`SpotError::Parse`] for malformed lines — including NaN, infinite,
    /// or negative prices — or [`SpotError::EmptyTrace`].
    pub fn parse_csv(text: &str) -> Result<Self, SpotError> {
        let mut prices = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let price_field = line.rsplit(',').next().unwrap_or(line).trim();
            let price: f64 = price_field.parse().map_err(|_| SpotError::Parse {
                line: i + 1,
                content: raw.to_owned(),
            })?;
            if !price.is_finite() || price < 0.0 {
                return Err(SpotError::Parse {
                    line: i + 1,
                    content: raw.to_owned(),
                });
            }
            prices.push(price);
        }
        if prices.is_empty() {
            return Err(SpotError::EmptyTrace);
        }
        Ok(SpotTrace { prices })
    }

    /// Generates a synthetic trace of `steps` points resembling the paper's traces: a
    /// mean-reverting random walk around `base_price` with occasional demand spikes that
    /// push the price above typical bids.
    ///
    /// A trace can never be empty, so `steps` is clamped to a minimum of 1:
    /// `synthetic(0, ..)` returns a one-point trace (and consumes the same amount
    /// of randomness as `synthetic(1, ..)`).
    pub fn synthetic<R: Rng>(steps: usize, base_price: f64, rng: &mut R) -> Self {
        let mut prices = Vec::with_capacity(steps.max(1));
        let mut price = base_price;
        let mut spike_left = 0usize;
        for _ in 0..steps.max(1) {
            if spike_left == 0 && rng.gen_bool(0.02) {
                // A demand spike lasting 15-60 minutes.
                spike_left = rng.gen_range(3..=12);
            }
            let drift = (base_price - price) * 0.2;
            let noise = rng.gen_range(-0.002f64..0.002);
            let spike = if spike_left > 0 {
                spike_left -= 1;
                base_price * rng.gen_range(0.15f64..0.45)
            } else {
                0.0
            };
            price = (price + drift + noise + spike).max(base_price * 0.5);
            prices.push(price);
            if spike_left == 0 {
                price = price.min(base_price * 1.1);
            }
        }
        SpotTrace { prices }
    }

    /// Number of trace points.
    pub fn len(&self) -> usize {
        self.prices.len()
    }

    /// Whether the trace is empty (never true for a constructed trace).
    pub fn is_empty(&self) -> bool {
        self.prices.is_empty()
    }

    /// Price at step `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn price(&self, i: usize) -> f64 {
        self.prices[i]
    }

    /// The raw price series.
    pub fn prices(&self) -> &[f64] {
        &self.prices
    }

    /// Total wall-clock time covered by the trace, in minutes.
    pub fn duration_minutes(&self) -> u64 {
        self.prices.len() as u64 * TRACE_STEP_MINUTES
    }

    /// Serialises the trace back to the CSV format accepted by [`SpotTrace::parse_csv`].
    pub fn to_csv(&self) -> String {
        let mut out = String::from("# minute,price\n");
        for (i, p) in self.prices.iter().enumerate() {
            out.push_str(&format!("{},{p:.6}\n", i as u64 * TRACE_STEP_MINUTES));
        }
        out
    }
}

/// The state of the training process at one trace step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpotStep {
    /// Minutes since the start of the trace.
    pub minute: u64,
    /// Market price at this step.
    pub price: f64,
    /// Whether the instance (and hence the training process) is running.
    pub running: bool,
}

/// The bid-vs-market simulator of the paper: walks a [`SpotTrace`] and decides at every
/// 5-minute step whether the training process runs or is killed.
#[derive(Debug, Clone)]
pub struct SpotSimulator {
    trace: SpotTrace,
    max_bid: f64,
}

impl SpotSimulator {
    /// Creates a simulator for the given trace and maximum bid price (the paper uses a
    /// maximum bid of 0.0955 USD/h).
    pub fn new(trace: SpotTrace, max_bid: f64) -> Self {
        SpotSimulator { trace, max_bid }
    }

    /// The maximum bid.
    pub fn max_bid(&self) -> f64 {
        self.max_bid
    }

    /// The underlying trace.
    pub fn trace(&self) -> &SpotTrace {
        &self.trace
    }

    /// The full state curve (Fig. 10b/d): one [`SpotStep`] per trace point.
    pub fn state_curve(&self) -> Vec<SpotStep> {
        self.trace
            .prices()
            .iter()
            .enumerate()
            .map(|(i, &price)| SpotStep {
                minute: i as u64 * TRACE_STEP_MINUTES,
                price,
                running: self.max_bid > price,
            })
            .collect()
    }

    /// Number of interruptions (transitions from running to killed) over the trace.
    pub fn interruptions(&self) -> usize {
        let curve = self.state_curve();
        curve
            .windows(2)
            .filter(|w| w[0].running && !w[1].running)
            .count()
    }

    /// Fraction of trace steps during which the instance is running.
    pub fn availability(&self) -> f64 {
        let curve = self.state_curve();
        curve.iter().filter(|s| s.running).count() as f64 / curve.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parse_csv_accepts_both_forms_and_comments() {
        let trace = SpotTrace::parse_csv("# header\n0,0.09\n5,0.095\n0.11\n\n").unwrap();
        assert_eq!(trace.len(), 3);
        assert!((trace.price(2) - 0.11).abs() < 1e-12);
        assert_eq!(trace.duration_minutes(), 15);
    }

    #[test]
    fn parse_csv_rejects_garbage_and_empty() {
        assert!(matches!(
            SpotTrace::parse_csv("abc,def").unwrap_err(),
            SpotError::Parse { line: 1, .. }
        ));
        assert_eq!(
            SpotTrace::parse_csv("# only comments\n").unwrap_err(),
            SpotError::EmptyTrace
        );
        assert_eq!(SpotTrace::new(vec![]).unwrap_err(), SpotError::EmptyTrace);
    }

    #[test]
    fn non_finite_and_negative_prices_are_rejected() {
        // Regression: a NaN price makes `max_bid > price` false, so preempted
        // minutes silently counted as available before validation existed.
        for bad in ["NaN", "inf", "-inf", "-0.09"] {
            let text = format!("0,0.09\n5,{bad}\n");
            match SpotTrace::parse_csv(&text) {
                Err(SpotError::Parse { line: 2, .. }) => {}
                other => panic!("price {bad} not rejected: {other:?}"),
            }
        }
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.01] {
            match SpotTrace::new(vec![0.09, bad, 0.09]) {
                Err(SpotError::Parse { line: 2, .. }) => {}
                other => panic!("price {bad} not rejected: {other:?}"),
            }
        }
        // Zero is a valid (free) price; positive prices still parse.
        assert_eq!(SpotTrace::new(vec![0.0, 0.09]).unwrap().len(), 2);
    }

    #[test]
    fn synthetic_zero_steps_yields_the_documented_minimum_one_point_trace() {
        let mut rng = StdRng::seed_from_u64(7);
        let zero = SpotTrace::synthetic(0, 0.09, &mut rng);
        assert_eq!(zero.len(), 1);
        let mut rng = StdRng::seed_from_u64(7);
        let one = SpotTrace::synthetic(1, 0.09, &mut rng);
        assert_eq!(zero, one);
    }

    #[test]
    fn csv_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let trace = SpotTrace::synthetic(50, 0.09, &mut rng);
        let parsed = SpotTrace::parse_csv(&trace.to_csv()).unwrap();
        assert_eq!(parsed.len(), trace.len());
        for (a, b) in parsed.prices().iter().zip(trace.prices()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn synthetic_trace_stays_positive_and_spikes() {
        let mut rng = StdRng::seed_from_u64(2);
        let trace = SpotTrace::synthetic(2000, 0.09, &mut rng);
        assert_eq!(trace.len(), 2000);
        assert!(trace.prices().iter().all(|p| *p > 0.0));
        let max = trace.prices().iter().cloned().fold(0.0, f64::max);
        assert!(
            max > 0.1,
            "synthetic trace never spikes above typical bids: max {max}"
        );
    }

    #[test]
    fn simulator_counts_interruptions_like_the_paper() {
        // A hand-built trace: price crosses the bid twice -> two interruptions.
        let bid = 0.0955;
        let prices = vec![0.09, 0.09, 0.12, 0.12, 0.09, 0.09, 0.13, 0.09];
        let sim = SpotSimulator::new(SpotTrace::new(prices).unwrap(), bid);
        assert_eq!(sim.interruptions(), 2);
        let curve = sim.state_curve();
        assert!(curve[0].running);
        assert!(!curve[2].running);
        assert_eq!(curve[2].minute, 10);
        assert!((sim.availability() - 5.0 / 8.0).abs() < 1e-9);
        assert!((sim.max_bid() - bid).abs() < 1e-12);
        assert_eq!(sim.trace().len(), 8);
    }

    #[test]
    fn higher_bid_means_fewer_interruptions() {
        let mut rng = StdRng::seed_from_u64(3);
        let trace = SpotTrace::synthetic(1500, 0.09, &mut rng);
        let low = SpotSimulator::new(trace.clone(), 0.0955);
        let high = SpotSimulator::new(trace, 10.0);
        assert!(low.interruptions() >= high.interruptions());
        assert_eq!(high.interruptions(), 0);
        assert!(high.availability() > 0.999);
    }
}
