//! The on-disk checkpoint format used by the SSD baseline.
//!
//! A checkpoint is a flat binary blob: a small header (magic, iteration counter, layer
//! count) followed by, for every layer, its (already encrypted) parameter buffers length-
//! prefixed. The format deliberately mirrors what Darknet's `save_weights` produces plus
//! the AES-GCM trailers Plinius adds: the enclave encrypts each tensor, the blob is
//! assembled and written out through ocalls, and restore walks the same structure in
//! reverse.

use crate::StorageError;
use bytes::{Buf, BufMut, BytesMut};

/// Magic number identifying a checkpoint blob.
const MAGIC: u32 = 0x504c_434b; // "PLCK"

/// A decoded checkpoint: the iteration counter plus, per layer, the encrypted parameter
/// buffers exactly as the enclave produced them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointBlob {
    /// Training iteration at which the checkpoint was taken.
    pub iteration: u64,
    /// `layers[i][j]` is the encrypted bytes of tensor `j` of layer `i`.
    pub layers: Vec<Vec<Vec<u8>>>,
}

impl CheckpointBlob {
    /// Total size of the payload (sum of all encrypted tensors), excluding framing.
    pub fn payload_bytes(&self) -> usize {
        self.layers
            .iter()
            .flat_map(|l| l.iter())
            .map(|t| t.len())
            .sum()
    }

    /// Number of layers carried by the checkpoint.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }
}

/// Encoder/decoder for [`CheckpointBlob`]s.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckpointCodec;

impl CheckpointCodec {
    /// Serialises a checkpoint into its on-disk representation.
    pub fn encode(blob: &CheckpointBlob) -> Vec<u8> {
        let mut out = BytesMut::with_capacity(blob.payload_bytes() + 64);
        out.put_u32_le(MAGIC);
        out.put_u64_le(blob.iteration);
        out.put_u32_le(blob.layers.len() as u32);
        for layer in &blob.layers {
            out.put_u32_le(layer.len() as u32);
            for tensor in layer {
                out.put_u64_le(tensor.len() as u64);
                out.put_slice(tensor);
            }
        }
        out.to_vec()
    }

    /// Parses an on-disk checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::MalformedCheckpoint`] on a bad magic number or truncation.
    pub fn decode(mut bytes: &[u8]) -> Result<CheckpointBlob, StorageError> {
        let malformed = |msg: &str| StorageError::MalformedCheckpoint(msg.to_owned());
        if bytes.remaining() < 16 {
            return Err(malformed("blob shorter than header"));
        }
        if bytes.get_u32_le() != MAGIC {
            return Err(malformed("bad magic number"));
        }
        let iteration = bytes.get_u64_le();
        let num_layers = bytes.get_u32_le() as usize;
        if num_layers > 1_000_000 {
            return Err(malformed("implausible layer count"));
        }
        let mut layers = Vec::with_capacity(num_layers);
        for _ in 0..num_layers {
            if bytes.remaining() < 4 {
                return Err(malformed("truncated layer header"));
            }
            let num_tensors = bytes.get_u32_le() as usize;
            if num_tensors > 1_000_000 {
                return Err(malformed("implausible tensor count"));
            }
            let mut tensors = Vec::with_capacity(num_tensors);
            for _ in 0..num_tensors {
                if bytes.remaining() < 8 {
                    return Err(malformed("truncated tensor header"));
                }
                let len = bytes.get_u64_le() as usize;
                if bytes.remaining() < len {
                    return Err(malformed("truncated tensor payload"));
                }
                tensors.push(bytes.copy_to_bytes(len).to_vec());
            }
            layers.push(tensors);
        }
        Ok(CheckpointBlob { iteration, layers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_blob() -> CheckpointBlob {
        CheckpointBlob {
            iteration: 321,
            layers: vec![
                vec![
                    vec![1u8; 40],
                    vec![2u8; 8],
                    vec![3u8; 8],
                    vec![4u8; 8],
                    vec![5u8; 8],
                ],
                vec![
                    vec![9u8; 100],
                    vec![8u8; 12],
                    vec![7u8; 12],
                    vec![6u8; 12],
                    vec![5u8; 12],
                ],
            ],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let blob = sample_blob();
        let bytes = CheckpointCodec::encode(&blob);
        let decoded = CheckpointCodec::decode(&bytes).unwrap();
        assert_eq!(decoded, blob);
        assert_eq!(decoded.iteration, 321);
        assert_eq!(decoded.num_layers(), 2);
        assert_eq!(blob.payload_bytes(), 40 + 8 * 4 + 100 + 12 * 4);
    }

    #[test]
    fn empty_checkpoint_round_trips() {
        let blob = CheckpointBlob {
            iteration: 0,
            layers: vec![],
        };
        let bytes = CheckpointCodec::encode(&blob);
        assert_eq!(CheckpointCodec::decode(&bytes).unwrap(), blob);
    }

    #[test]
    fn bad_magic_and_truncation_are_rejected() {
        let blob = sample_blob();
        let mut bytes = CheckpointCodec::encode(&blob);
        // Bad magic.
        let mut corrupted = bytes.clone();
        corrupted[0] ^= 0xFF;
        assert!(CheckpointCodec::decode(&corrupted).is_err());
        // Truncations at various points.
        for cut in [4usize, 15, 20, bytes.len() - 3] {
            assert!(
                CheckpointCodec::decode(&bytes[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
        // Declaring more tensors than present.
        let len = bytes.len();
        bytes.truncate(len - 1);
        assert!(CheckpointCodec::decode(&bytes).is_err());
    }
}
