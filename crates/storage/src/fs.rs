//! An in-memory simulated file system with a storage-device cost model.
//!
//! The paper's SSD baseline issues `fwrite` calls through ocalls, flushes the libc
//! buffers and calls `fsync` after every write to make sure the checkpoint really is on
//! the device. [`SimFileSystem`] reproduces that interface (create/write/read/fsync) and
//! charges the corresponding device costs to the shared simulation clock.

use crate::StorageError;
use parking_lot::Mutex;
use sim_clock::{ClockHandle, CostModel, SimClock, StatsHandle, StatsRegistry};
use std::collections::HashMap;
use std::sync::Arc;

/// Which secondary-storage device the simulated file system sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StorageProfile {
    /// SATA/NVMe SSD behind Ext4 (the paper's baseline device).
    #[default]
    Ssd,
    /// Spinning disk: an order of magnitude slower writes and much slower fsyncs.
    Hdd,
}

impl StorageProfile {
    /// Multiplier applied to the cost model's SSD bandwidth costs.
    fn bandwidth_factor(&self) -> f64 {
        match self {
            StorageProfile::Ssd => 1.0,
            StorageProfile::Hdd => 4.0,
        }
    }

    /// Multiplier applied to the cost model's fsync latency.
    fn fsync_factor(&self) -> u64 {
        match self {
            StorageProfile::Ssd => 1,
            StorageProfile::Hdd => 8,
        }
    }
}

/// Per-file-system activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FileStats {
    /// Bytes written.
    pub bytes_written: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Number of fsync calls.
    pub fsyncs: u64,
    /// Number of files deleted.
    pub deletes: u64,
}

struct Inner {
    files: HashMap<String, Vec<u8>>,
    stats: FileStats,
}

/// An in-memory file system with modeled device latencies. Cloning yields another handle
/// to the same file system.
#[derive(Clone)]
pub struct SimFileSystem {
    inner: Arc<Mutex<Inner>>,
    clock: ClockHandle,
    stats: StatsHandle,
    cost: Arc<CostModel>,
    profile: StorageProfile,
}

impl std::fmt::Debug for SimFileSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimFileSystem")
            .field("files", &self.inner.lock().files.len())
            .field("profile", &self.profile)
            .finish()
    }
}

impl SimFileSystem {
    /// Creates an empty file system with default settings (SSD profile, fresh clock).
    pub fn new() -> Self {
        Self::with_settings(
            CostModel::default(),
            StorageProfile::Ssd,
            SimClock::new(),
            StatsRegistry::new(),
        )
    }

    /// Creates a file system with an explicit cost model, device profile and shared
    /// clock/statistics handles.
    pub fn with_settings(
        cost: CostModel,
        profile: StorageProfile,
        clock: ClockHandle,
        stats: StatsHandle,
    ) -> Self {
        SimFileSystem {
            inner: Arc::new(Mutex::new(Inner {
                files: HashMap::new(),
                stats: FileStats::default(),
            })),
            clock,
            stats,
            cost: Arc::new(cost),
            profile,
        }
    }

    /// The simulation clock costs are charged to.
    pub fn clock(&self) -> ClockHandle {
        Arc::clone(&self.clock)
    }

    /// A handle to the *same files* that charges its device costs to a different
    /// clock/statistics pair — how a new deployment (fresh simulation timeline) opens
    /// a disk that survived the previous one.
    pub fn rebound(&self, clock: ClockHandle, stats: StatsHandle) -> SimFileSystem {
        SimFileSystem {
            inner: Arc::clone(&self.inner),
            clock,
            stats,
            cost: Arc::clone(&self.cost),
            profile: self.profile,
        }
    }

    /// The device profile of this file system.
    pub fn profile(&self) -> StorageProfile {
        self.profile
    }

    /// Whether `path` exists.
    pub fn exists(&self, path: &str) -> bool {
        self.inner.lock().files.contains_key(path)
    }

    /// Size of `path` in bytes.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::NotFound`] if the file does not exist.
    pub fn file_size(&self, path: &str) -> Result<usize, StorageError> {
        self.inner
            .lock()
            .files
            .get(path)
            .map(|f| f.len())
            .ok_or_else(|| StorageError::NotFound(path.to_owned()))
    }

    /// Creates (or truncates) `path`.
    pub fn create(&self, path: &str) {
        self.inner.lock().files.insert(path.to_owned(), Vec::new());
    }

    /// Appends `data` to `path`, creating the file if needed (the `fwrite` of the
    /// baseline). Charges the device's per-byte write cost.
    pub fn write(&self, path: &str, data: &[u8]) {
        let mut inner = self.inner.lock();
        inner
            .files
            .entry(path.to_owned())
            .or_default()
            .extend_from_slice(data);
        inner.stats.bytes_written += data.len() as u64;
        drop(inner);
        let ns = (self.cost.ssd_write_ns(data.len() as u64) as f64
            * self.profile.bandwidth_factor())
        .round() as u64;
        self.clock.advance_ns(ns);
        self.stats
            .counter("fs.bytes_written")
            .add(data.len() as u64);
    }

    /// Reads `len` bytes at `offset` from `path` (the `fread` of the baseline). Charges
    /// the device's per-byte read cost.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::NotFound`] or [`StorageError::ShortRead`].
    pub fn read(&self, path: &str, offset: usize, len: usize) -> Result<Vec<u8>, StorageError> {
        let mut inner = self.inner.lock();
        let file = inner
            .files
            .get(path)
            .ok_or_else(|| StorageError::NotFound(path.to_owned()))?;
        if offset + len > file.len() {
            return Err(StorageError::ShortRead {
                path: path.to_owned(),
                offset,
                len,
                size: file.len(),
            });
        }
        let data = file[offset..offset + len].to_vec();
        inner.stats.bytes_read += len as u64;
        drop(inner);
        let ns = (self.cost.ssd_read_ns(len as u64, 0) as f64 * self.profile.bandwidth_factor())
            .round() as u64;
        self.clock.advance_ns(ns);
        self.stats.counter("fs.bytes_read").add(len as u64);
        Ok(data)
    }

    /// Reads the whole file.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::NotFound`] if the file does not exist.
    pub fn read_all(&self, path: &str) -> Result<Vec<u8>, StorageError> {
        let size = self.file_size(path)?;
        self.read(path, 0, size)
    }

    /// Issues an fsync on `path`, charging the device's fsync latency.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::NotFound`] if the file does not exist.
    pub fn fsync(&self, path: &str) -> Result<(), StorageError> {
        let mut inner = self.inner.lock();
        if !inner.files.contains_key(path) {
            return Err(StorageError::NotFound(path.to_owned()));
        }
        inner.stats.fsyncs += 1;
        drop(inner);
        self.clock
            .advance_ns(self.cost.ssd_fsync() * self.profile.fsync_factor());
        self.stats.counter("fs.fsyncs").incr();
        Ok(())
    }

    /// Deletes `path` if it exists; returns whether it did.
    pub fn delete(&self, path: &str) -> bool {
        let mut inner = self.inner.lock();
        let removed = inner.files.remove(path).is_some();
        if removed {
            inner.stats.deletes += 1;
        }
        removed
    }

    /// Activity counters since creation.
    pub fn file_stats(&self) -> FileStats {
        self.inner.lock().stats
    }

    /// Names of all files, sorted.
    pub fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.lock().files.keys().cloned().collect();
        names.sort();
        names
    }
}

impl Default for SimFileSystem {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let fs = SimFileSystem::new();
        fs.write("model.ckpt", b"hello ");
        fs.write("model.ckpt", b"world");
        assert!(fs.exists("model.ckpt"));
        assert_eq!(fs.file_size("model.ckpt").unwrap(), 11);
        assert_eq!(fs.read_all("model.ckpt").unwrap(), b"hello world");
        assert_eq!(fs.read("model.ckpt", 6, 5).unwrap(), b"world");
    }

    #[test]
    fn missing_files_and_short_reads_error() {
        let fs = SimFileSystem::new();
        assert!(matches!(
            fs.read_all("nope").unwrap_err(),
            StorageError::NotFound(_)
        ));
        assert!(fs.fsync("nope").is_err());
        fs.write("f", b"abc");
        assert!(matches!(
            fs.read("f", 2, 5).unwrap_err(),
            StorageError::ShortRead { size: 3, .. }
        ));
    }

    #[test]
    fn create_truncates_and_delete_removes() {
        let fs = SimFileSystem::new();
        fs.write("f", b"old data");
        fs.create("f");
        assert_eq!(fs.file_size("f").unwrap(), 0);
        assert!(fs.delete("f"));
        assert!(!fs.delete("f"));
        assert!(!fs.exists("f"));
        assert_eq!(fs.file_stats().deletes, 1);
    }

    #[test]
    fn costs_are_charged_to_the_clock() {
        let clock = SimClock::new();
        let fs = SimFileSystem::with_settings(
            CostModel::sgx_eml_pm(),
            StorageProfile::Ssd,
            Arc::clone(&clock),
            StatsRegistry::new(),
        );
        fs.write("ckpt", &vec![0u8; 1024 * 1024]);
        let after_write = clock.now_ns();
        assert!(after_write > 1_000_000, "1 MB SSD write should cost > 1 ms");
        fs.fsync("ckpt").unwrap();
        assert!(clock.now_ns() >= after_write + CostModel::sgx_eml_pm().ssd_fsync());
        assert_eq!(fs.file_stats().fsyncs, 1);
    }

    #[test]
    fn hdd_is_slower_than_ssd() {
        let run = |profile| {
            let clock = SimClock::new();
            let fs = SimFileSystem::with_settings(
                CostModel::sgx_eml_pm(),
                profile,
                Arc::clone(&clock),
                StatsRegistry::new(),
            );
            fs.write("f", &vec![0u8; 1 << 20]);
            fs.fsync("f").unwrap();
            clock.now_ns()
        };
        assert!(run(StorageProfile::Hdd) > 2 * run(StorageProfile::Ssd));
    }

    #[test]
    fn rebound_shares_files_but_charges_the_new_clock() {
        let fs = SimFileSystem::new();
        fs.write("survivor", b"data");
        let new_clock = SimClock::new();
        let reopened = fs.rebound(Arc::clone(&new_clock), StatsRegistry::new());
        assert_eq!(reopened.read_all("survivor").unwrap(), b"data");
        assert!(new_clock.now_ns() > 0, "read cost must hit the new clock");
        let before = new_clock.now_ns();
        reopened.write("survivor", b"more");
        assert!(new_clock.now_ns() > before);
        // The write is visible through the original handle too.
        assert_eq!(fs.file_size("survivor").unwrap(), 8);
    }

    #[test]
    fn list_is_sorted_and_shared_between_clones() {
        let fs = SimFileSystem::new();
        let clone = fs.clone();
        fs.write("b", b"1");
        clone.write("a", b"2");
        assert_eq!(fs.list(), vec!["a".to_string(), "b".to_string()]);
    }
}
