//! # plinius-storage
//!
//! The secondary-storage substrate of the reproduction: a simulated file system backed by
//! an SSD (or HDD) cost model, plus the binary checkpoint format used by the paper's
//! baseline ("traditional checkpointing on secondary storage"). The Plinius crate builds
//! the SSD checkpointing baseline of Fig. 7 / Table I on top of this: the enclave
//! encrypts model buffers, then issues `fwrite`/`fsync` ocalls that land here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

pub mod checkpoint;
pub mod fs;

pub use checkpoint::{CheckpointBlob, CheckpointCodec};
pub use fs::{FileStats, SimFileSystem, StorageProfile};

/// Errors produced by the storage substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The requested file does not exist.
    NotFound(String),
    /// A read went past the end of a file.
    ShortRead {
        /// File being read.
        path: String,
        /// Offset of the read.
        offset: usize,
        /// Bytes requested.
        len: usize,
        /// File size.
        size: usize,
    },
    /// A checkpoint blob could not be decoded.
    MalformedCheckpoint(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NotFound(path) => write!(f, "file '{path}' not found"),
            StorageError::ShortRead {
                path,
                offset,
                len,
                size,
            } => write!(
                f,
                "read of {len} bytes at offset {offset} past end of '{path}' ({size} bytes)"
            ),
            StorageError::MalformedCheckpoint(msg) => write!(f, "malformed checkpoint: {msg}"),
        }
    }
}

impl Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(StorageError::NotFound("model.ckpt".into())
            .to_string()
            .contains("model.ckpt"));
        assert!(StorageError::MalformedCheckpoint("truncated".into())
            .to_string()
            .contains("truncated"));
    }
}
