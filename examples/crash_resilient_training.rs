//! Crash-resilient training (the Fig. 9 scenario): the training process is killed
//! several times; thanks to the encrypted PM mirror the model resumes exactly where it
//! stopped, while a non-resilient run has to start over after every crash.
//!
//! Run with: `cargo run --example crash_resilient_training`

use plinius::{
    train_with_crash_schedule, PersistenceBackend, PipelineMode, TrainerConfig, TrainingSetup,
};
use plinius_darknet::{mnist_cnn_config, synthetic_mnist};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim_clock::CostModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(5);
    let setup = TrainingSetup {
        cost: CostModel::eml_sgx_pm(),
        pm_bytes: 64 * 1024 * 1024,
        model_config: mnist_cnn_config(3, 8, 16),
        dataset: synthetic_mnist(400, &mut rng),
        trainer: TrainerConfig {
            batch: 16,
            max_iterations: 60,
            mirror_frequency: 1,
            encrypted_data: true,
            seed: 2,
            pipeline: PipelineMode::from_env(),
            ring_depth: plinius::ring_depth_from_env(),
            crypto: plinius::EnginePolicy::from_env(),
            gemm: plinius::GemmPolicy::from_env(),
        },
        backend: PersistenceBackend::PmMirror,
        model_seed: 9,
    };
    let crashes = [12u64, 30, 47];
    println!("Killing the training process after {crashes:?} executed iterations...");
    let resilient = train_with_crash_schedule(&setup, &crashes, true)?;
    let fragile = train_with_crash_schedule(&setup, &crashes, false)?;
    println!(
        "  crash-resilient (Plinius): {} iterations executed to reach iteration {}",
        resilient.total_iterations_executed, resilient.completed_iteration
    );
    println!(
        "  non-crash-resilient:       {} iterations executed to reach iteration {}",
        fragile.total_iterations_executed, fragile.completed_iteration
    );
    println!(
        "  wasted work without mirroring: {} extra iterations",
        fragile.total_iterations_executed - resilient.total_iterations_executed
    );
    Ok(())
}
