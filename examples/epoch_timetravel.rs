//! Epoch time-travel: train with a deep epoch ring, browse the retained epochs
//! through the mirror's virtual filesystem, diff two epochs, roll the live model
//! back to an earlier epoch, and ship a sealed epoch to a second deployment.
//!
//! Run with: `cargo run --example epoch_timetravel`

use plinius::{MirrorModel, MirrorVfs, PliniusBuilder, PliniusContext, TrainingSetup, Vfs};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train a small model with a depth-4 epoch ring: the last four committed
    // epochs stay addressable in PM instead of only the newest one.
    let mut setup = TrainingSetup::small_test();
    setup.trainer.ring_depth = 4;
    let mut trainer = PliniusBuilder::new(setup).build()?;
    trainer.run()?;
    println!(
        "trained to iteration {} with a depth-4 epoch ring",
        trainer.iteration()
    );

    // Browse the mirror like a filesystem. Every retained epoch is a directory
    // of sealed (AES-GCM) tensor files plus a human-readable `meta` file.
    let mirror = trainer
        .mirror_handle()
        .expect("the PM-mirror backend always carries a mirror");
    let vfs = MirrorVfs::new(trainer.context(), &mirror);
    println!("\nVFS tree (HEAD -> {}):", vfs.read_link("/HEAD")?);
    for dir in vfs.list("/epoch")? {
        let files = vfs.list(&format!("/epoch/{}", dir.name))?;
        let sealed: usize = files
            .iter()
            .filter(|e| e.name.ends_with(".sealed"))
            .map(|e| e.len)
            .sum();
        println!(
            "  /epoch/{:<3} {} files, {} sealed bytes",
            dir.name,
            files.len(),
            sealed
        );
    }

    // Diff the oldest and newest retained epochs: which tensors moved, and how far.
    let epochs = mirror.epochs(trainer.context())?;
    let (oldest, newest) = (epochs[0], *epochs.last().unwrap());
    let diff = vfs.epoch_diff(oldest, newest)?;
    println!(
        "\nepoch {oldest} -> {newest}: {} bytes changed, total l2 delta {:.6}",
        diff.changed_bytes, diff.l2_delta
    );
    for t in diff.tensors.iter().filter(|t| t.changed_bytes > 0).take(4) {
        println!(
            "  layer {} tensor {}: {} bytes, l2 {:.6}",
            t.layer, t.tensor, t.changed_bytes, t.l2_delta
        );
    }

    // Time-travel: roll the live trainer back one epoch and retrain the rest.
    let back_to = newest - 1;
    trainer.rollback_to(back_to)?;
    println!(
        "\nrolled the live model back to epoch {back_to} (iteration {})",
        trainer.iteration()
    );
    trainer.run()?;
    println!("retrained forward to iteration {}", trainer.iteration());

    // Ship an epoch across deployments: export the sealed bytes (no plaintext
    // leaves the enclave), import them into a second pool under the same key.
    let payload = vfs.export(newest)?;
    let wire = payload.to_bytes();
    println!(
        "\nexported epoch {} as a {}-byte sealed payload",
        payload.epoch,
        wire.len()
    );
    let ctx_b = PliniusContext::small_test(32 * 1024 * 1024);
    ctx_b.provision_key_directly(trainer.context().key()?);
    let template = trainer.network().clone();
    let mirror_b = MirrorModel::allocate(&ctx_b, &template)?;
    let vfs_b = MirrorVfs::new(&ctx_b, &mirror_b);
    let committed = vfs_b.import(&plinius::SealedEpoch::from_bytes(&wire)?)?;
    let mut restored = template;
    mirror_b.restore_epoch(&ctx_b, &mut restored, committed)?;
    println!(
        "imported it into a fresh deployment as epoch {committed} (iteration {})",
        restored.iteration()
    );
    Ok(())
}
