//! Hybrid tiered persistence: mirror to PM every iteration for near-instant recovery,
//! and *demote* an encrypted checkpoint to the SSD every few iterations so the model
//! even survives the loss of the PM module itself — a scenario the paper motivates
//! (PM as the fast tier, SSD as the safety net) but never builds.
//!
//! The example walks through three lives of one training job:
//!
//! 1. initial training with the hybrid backend;
//! 2. a process crash — the PM mirror restores the model with zero lost iterations;
//! 3. a PM module replacement (brand-new pool) — the demoted SSD checkpoint brings the
//!    model back, losing only the iterations since the last demotion.
//!
//! Run with: `cargo run --example hybrid_tiered_training`

use plinius::{
    shared_ssd, HybridTieredBackend, PersistenceBackend, PipelineMode, PliniusBuilder,
    PliniusContext, PmDataset, TrainerConfig, TrainingSetup,
};
use plinius_crypto::Key;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim_clock::CostModel;

const DEMOTE_EVERY: u64 = 5;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(17);
    let setup = TrainingSetup {
        cost: CostModel::eml_sgx_pm(),
        pm_bytes: 64 * 1024 * 1024,
        model_config: plinius_darknet::mnist_cnn_config(2, 8, 16),
        dataset: plinius_darknet::synthetic_mnist(400, &mut rng),
        trainer: TrainerConfig {
            batch: 16,
            max_iterations: 30,
            mirror_frequency: 1,
            encrypted_data: true,
            seed: 6,
            pipeline: PipelineMode::from_env(),
            ring_depth: plinius::ring_depth_from_env(),
            crypto: plinius::EnginePolicy::from_env(),
            gemm: plinius::GemmPolicy::from_env(),
        },
        backend: PersistenceBackend::HybridTiered {
            ssd_path: "tier.ckpt".into(),
            demote_every: DEMOTE_EVERY,
        },
        model_seed: 2,
    };
    let key = Key::generate_128(&mut rng);

    // Life 1: deploy and train. The SSD (like a real disk) outlives every crash below.
    let ctx = PliniusContext::create(setup.cost.clone(), setup.pm_bytes)?;
    ctx.provision_key_directly(key.clone());
    PmDataset::load(&ctx, &setup.dataset)?;
    let ssd = shared_ssd(&ctx);
    let pool = ctx.pool().clone();
    let mut trainer = PliniusBuilder::new(setup.clone())
        .context(ctx)
        .backend(HybridTieredBackend::on_filesystem(
            ssd.clone(),
            "tier.ckpt",
            DEMOTE_EVERY,
        ))
        .build()?;
    trainer.run_at_most(12)?;
    println!(
        "life 1: trained to iteration {} with '{}' (demotions every {DEMOTE_EVERY} iters)",
        trainer.iteration(),
        trainer.backend().label(),
    );
    drop(trainer);

    // Life 2: the process is killed; unflushed PM lines are dropped but the pool
    // survives — the mirror restores the model with zero lost iterations.
    let mut crash_rng = StdRng::seed_from_u64(1);
    pool.crash(&mut crash_rng, plinius_pmem::CrashMode::DropUnflushed);
    let ctx2 = PliniusContext::open(pool, setup.cost.clone())?;
    ctx2.provision_key_directly(key.clone());
    let mut trainer = PliniusBuilder::new(setup.clone())
        .context(ctx2)
        .backend(HybridTieredBackend::on_filesystem(
            ssd.clone(),
            "tier.ckpt",
            DEMOTE_EVERY,
        ))
        .build()?;
    println!(
        "life 2: process crash -> PM mirror restored iteration {}",
        trainer.iteration()
    );
    trainer.run_at_most(7)?;
    let before_pm_loss = trainer.iteration();
    drop(trainer);

    // Life 3: the PM module itself is replaced — a brand-new pool holds neither the
    // mirror nor the dataset. Only the demoted SSD checkpoint survives; the new
    // deployment reopens it rebound to its own clock so I/O costs land on ctx3's
    // timeline, not the discarded one.
    let ctx3 = PliniusContext::create(setup.cost.clone(), setup.pm_bytes)?;
    ctx3.provision_key_directly(key);
    PmDataset::load(&ctx3, &setup.dataset)?;
    let ssd = ssd.rebound(ctx3.clock(), ctx3.stats());
    let mut trainer = PliniusBuilder::new(setup)
        .context(ctx3)
        .backend(HybridTieredBackend::on_filesystem(
            ssd,
            "tier.ckpt",
            DEMOTE_EVERY,
        ))
        .build()?;
    println!(
        "life 3: PM module lost at iteration {before_pm_loss} -> SSD checkpoint restored \
         iteration {} ({} iterations lost, bounded by the demotion interval)",
        trainer.iteration(),
        before_pm_loss - trainer.iteration()
    );
    let report = trainer.run()?;
    println!(
        "finished at iteration {} (final loss {:.4})",
        report.final_iteration,
        report.final_loss().unwrap_or(f32::NAN)
    );
    Ok(())
}
