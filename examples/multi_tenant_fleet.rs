//! Multi-tenant fleet: four training jobs share one PM module, each with its own
//! Romulus root pair, its own enclave-derived sealing key and its own epoch ring.
//! Compute overlaps across tenants while publishes serialize on the modeled PM
//! write lane; the tenant-aware VFS exposes everything under `/tenant/{id}/...`.
//!
//! Run with: `cargo run --example multi_tenant_fleet`

use plinius::{Fleet, FleetConfig, MirrorModel, MirrorVfs, TrainingSetup, Vfs};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One setup template, four tenants. The pool is sized for four datasets plus
    // four mirror rings; each tenant's batch stream is decorrelated by its id.
    let mut setup = TrainingSetup::small_test();
    setup.trainer.max_iterations = 8;
    setup.trainer.mirror_frequency = 2;
    setup.pm_bytes = 128 * 1024 * 1024;
    let mut fleet = Fleet::deploy(
        setup,
        FleetConfig {
            tenants: 4,
            max_concurrent: 0,
        },
    )?;
    let report = fleet.run()?;

    println!(
        "fleet of {} tenants on one PM module:",
        report.tenants.len()
    );
    for t in &report.tenants {
        println!(
            "  tenant {}: iteration {}, loss {:.4}, latency {:.3} ms, {} publishes",
            t.tenant,
            t.final_iteration,
            t.final_loss,
            t.latency_ns as f64 / 1e6,
            t.persist_stats.publishes
        );
    }
    println!(
        "\nmakespan {:.3} ms vs serial {:.3} ms ({} jobs/hour, p99 latency {:.3} ms)",
        report.makespan_ns as f64 / 1e6,
        report.serial_ns as f64 / 1e6,
        report.jobs_per_hour() as u64,
        report.latency.p99_ns as f64 / 1e6,
    );
    println!(
        "PM write lane busy {:.1}% of the makespan; fleet-wide {} publishes",
        100.0 * report.pm_lane_busy_ns as f64 / report.makespan_ns as f64,
        report.persist_stats().publishes
    );

    // The tenant-aware VFS lifts every tenant's epoch tree under its own prefix.
    let vfs = fleet.vfs();
    println!("\nVFS: /tenant/ -> {:?}", {
        let names: Vec<String> = vfs.list("/tenant")?.into_iter().map(|e| e.name).collect();
        names
    });
    for tenant in vfs.mounted() {
        let head = vfs.read_link(&format!("/tenant/{tenant}/HEAD"))?;
        println!("  /tenant/{tenant}/HEAD -> {head}");
    }

    // Cryptographic isolation: a sealed epoch exported by tenant 0 is rejected
    // wholesale by tenant 1's importer — the derived keys differ.
    let ctx0 = fleet.tenant_context(0)?;
    let ctx1 = fleet.tenant_context(1)?;
    let mirror0 = MirrorModel::open(&ctx0)?;
    let mirror1 = MirrorModel::open(&ctx1)?;
    let newest = mirror0.epoch(&ctx0)?;
    let payload = MirrorVfs::new(&ctx0, &mirror0).export(newest)?;
    match MirrorVfs::new(&ctx1, &mirror1).import(&payload) {
        Err(e) => {
            println!("\ntenant 0's sealed epoch {newest} rejected by tenant 1's importer: {e}")
        }
        Ok(_) => unreachable!("cross-tenant imports must fail authentication"),
    }
    Ok(())
}
