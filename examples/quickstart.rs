//! Quickstart: the complete Plinius workflow on a small synthetic MNIST-like dataset —
//! remote attestation, key provisioning, encrypted data loading into PM, training with
//! per-iteration mirroring, and secure inference.
//!
//! Run with: `cargo run --example quickstart`

use plinius::{run_full_workflow, PersistenceBackend, PipelineMode, TrainerConfig, TrainingSetup};
use plinius_darknet::{mnist_cnn_config, synthetic_mnist};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim_clock::CostModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(1);
    let setup = TrainingSetup {
        cost: CostModel::sgx_eml_pm(),
        pm_bytes: 64 * 1024 * 1024,
        model_config: mnist_cnn_config(2, 8, 32),
        dataset: synthetic_mnist(600, &mut rng),
        trainer: TrainerConfig {
            batch: 32,
            max_iterations: 60,
            mirror_frequency: 1,
            encrypted_data: true,
            seed: 7,
            pipeline: PipelineMode::from_env(),
            ring_depth: plinius::ring_depth_from_env(),
            crypto: plinius::EnginePolicy::from_env(),
            gemm: plinius::GemmPolicy::from_env(),
        },
        backend: PersistenceBackend::PmMirror,
        model_seed: 3,
    };
    println!(
        "Running the full Plinius workflow (attest -> provision -> load -> train -> infer)..."
    );
    let report = run_full_workflow(&setup)?;
    println!("  attestation ok:   {}", report.attestation_ok);
    println!("  final iteration:  {}", report.final_iteration);
    println!("  final loss:       {:.4}", report.final_loss);
    println!("  test accuracy:    {:.1}%", report.test_accuracy * 100.0);
    println!(
        "  encrypted data in PM: {} KiB",
        report.pm_dataset_bytes / 1024
    );
    println!(
        "  simulated time:   {:.3} s",
        report.simulated_ns as f64 / 1e9
    );
    Ok(())
}
