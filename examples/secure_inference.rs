//! Secure inference (§VI): train a CNN inside the enclave on encrypted PM data, then
//! classify a held-out test set with the trained in-enclave model.
//!
//! The trainer is assembled through `PliniusBuilder`: with no explicit context it
//! performs a local deployment (fresh PM pool, seed-derived key, dataset loaded into
//! PM) — the shortest path from a dataset to a training enclave.
//!
//! Run with: `cargo run --release --example secure_inference`

use plinius::{PersistenceBackend, PipelineMode, PliniusBuilder, TrainerConfig, TrainingSetup};
use plinius_darknet::{mnist_cnn_config, synthetic_mnist};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim_clock::CostModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(3);
    let dataset = synthetic_mnist(1200, &mut rng);
    let (train, test) = dataset.split(1000);
    let setup = TrainingSetup {
        cost: CostModel::sgx_eml_pm(),
        pm_bytes: 128 * 1024 * 1024,
        model_config: mnist_cnn_config(2, 8, 32),
        dataset: train,
        trainer: TrainerConfig {
            batch: 32,
            max_iterations: 150,
            mirror_frequency: 10,
            encrypted_data: true,
            seed: 33,
            pipeline: PipelineMode::from_env(),
        },
        backend: PersistenceBackend::PmMirror,
        model_seed: 8,
    };
    let mut trainer = PliniusBuilder::new(setup).build()?;
    let report = trainer.run()?;
    println!(
        "Trained for {} iterations, final loss {:.4}",
        report.final_iteration,
        report.final_loss().unwrap_or(f32::NAN)
    );
    println!(
        "Persistence: {} ({} persists, {} KiB written)",
        trainer.backend().label(),
        trainer.persist_stats().persists,
        trainer.persist_stats().persisted_bytes / 1024
    );
    let accuracy = trainer.accuracy(&test);
    println!(
        "Secure inference accuracy on {} held-out samples: {:.1}%",
        test.len(),
        accuracy * 100.0
    );
    Ok(())
}
