//! Secure inference (§VI): train a CNN inside the enclave on encrypted PM data, then
//! classify a held-out test set with the trained in-enclave model.
//!
//! Run with: `cargo run --release --example secure_inference`

use plinius::{PersistenceBackend, PliniusContext, PliniusTrainer, PmDataset, TrainerConfig};
use plinius_crypto::Key;
use plinius_darknet::config::build_network;
use plinius_darknet::{mnist_cnn_config, synthetic_mnist};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim_clock::CostModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(3);
    let dataset = synthetic_mnist(1200, &mut rng);
    let (train, test) = dataset.split(1000);
    let ctx = PliniusContext::create(CostModel::sgx_eml_pm(), 128 * 1024 * 1024)?;
    ctx.provision_key_directly(Key::generate_128(&mut rng));
    PmDataset::load(&ctx, &train)?;
    let network = build_network(&mnist_cnn_config(2, 8, 32), &mut rng)?;
    let config = TrainerConfig {
        batch: 32,
        max_iterations: 150,
        mirror_frequency: 10,
        backend: PersistenceBackend::PmMirror,
        encrypted_data: true,
        seed: 33,
    };
    let mut trainer = PliniusTrainer::new(ctx, network, config, None)?;
    let report = trainer.run()?;
    println!(
        "Trained for {} iterations, final loss {:.4}",
        report.final_iteration,
        report.final_loss().unwrap_or(f32::NAN)
    );
    let accuracy = trainer.accuracy(&test);
    println!(
        "Secure inference accuracy on {} held-out samples: {:.1}%",
        test.len(),
        accuracy * 100.0
    );
    Ok(())
}
