//! Secure inference (§VI): train a CNN inside the enclave on encrypted PM data, then
//! serve a held-out test set through the batched `InferenceServer` tier.
//!
//! The trainer is assembled through `PliniusBuilder`: with no explicit context it
//! performs a local deployment (fresh PM pool, seed-derived key, dataset loaded into
//! PM) — the shortest path from a dataset to a training enclave. The server then
//! attaches to the live mirror via `mirror_handle()`, restores the committed epoch
//! with a torn-read-free snapshot read, and answers an open-loop request stream,
//! reporting accuracy alongside latency percentiles and throughput.
//!
//! Run with: `cargo run --release --example secure_inference`

use plinius::{
    InferenceServer, PersistenceBackend, PipelineMode, PliniusBuilder, ServeConfig, ServeSession,
    TrainerConfig, TrainingSetup,
};
use plinius_darknet::{mnist_cnn_config, synthetic_mnist};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim_clock::CostModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(3);
    let dataset = synthetic_mnist(1200, &mut rng);
    let (train, test) = dataset.split(1000);
    let setup = TrainingSetup {
        cost: CostModel::sgx_eml_pm(),
        pm_bytes: 128 * 1024 * 1024,
        model_config: mnist_cnn_config(2, 8, 32),
        dataset: train,
        trainer: TrainerConfig {
            batch: 32,
            max_iterations: 150,
            mirror_frequency: 10,
            encrypted_data: true,
            seed: 33,
            pipeline: PipelineMode::from_env(),
            ring_depth: plinius::ring_depth_from_env(),
            crypto: plinius::EnginePolicy::from_env(),
            gemm: plinius::GemmPolicy::from_env(),
        },
        backend: PersistenceBackend::PmMirror,
        model_seed: 8,
    };
    let template = setup.build_network()?;
    let mut trainer = PliniusBuilder::new(setup).build()?;
    let report = trainer.run()?;
    println!(
        "Trained for {} iterations, final loss {:.4}",
        report.final_iteration,
        report.final_loss().unwrap_or(f32::NAN)
    );
    println!(
        "Persistence: {} ({} persists, {} KiB written)",
        trainer.backend().label(),
        trainer.persist_stats().persists,
        trainer.persist_stats().persisted_bytes / 1024
    );

    // Serve the held-out set from the committed epoch: the server never reads the
    // trainer's in-enclave weights, only the sealed PM mirror.
    let server = InferenceServer::new(
        trainer.context(),
        trainer
            .mirror_handle()
            .expect("the PM-mirror backend always carries a mirror"),
        &template,
    )?;
    println!(
        "Serving epoch {} (iteration {}) from the PM mirror",
        server.epoch(),
        server.iteration()
    );
    let mut session = ServeSession::new(
        server,
        test,
        ServeConfig {
            batch: 16,
            arrival_ns: 50_000, // 20k requests/s offered load
            requests: 400,
            seed: 99,
        },
    )?;
    let serve_report = session.run()?;
    println!(
        "Secure inference accuracy on {} served requests: {:.1}%",
        serve_report.served,
        serve_report.accuracy() * 100.0
    );
    println!(
        "Throughput {:.0} req/s over {} batches ({} hot swaps); latency {}",
        serve_report.throughput_rps(),
        serve_report.batches,
        serve_report.swaps,
        serve_report.latency
    );
    Ok(())
}
