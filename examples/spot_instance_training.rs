//! Training on an AWS EC2 spot instance (the Fig. 10 scenario): a market-price trace is
//! compared against a maximum bid every five minutes; the training process is killed
//! whenever it is outbid and resumes from the PM mirror when the instance comes back.
//!
//! Run with: `cargo run --example spot_instance_training [trace.csv]`

use plinius::{
    spot_crash_schedule, train_with_crash_schedule, PersistenceBackend, PipelineMode,
    TrainerConfig, TrainingSetup,
};
use plinius_darknet::{mnist_cnn_config_with_momentum, synthetic_mnist};
use plinius_spot::{SpotSimulator, SpotTrace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim_clock::CostModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(12);
    let trace = match std::env::args().nth(1) {
        Some(path) => SpotTrace::parse_csv(&std::fs::read_to_string(path)?)?,
        None => SpotTrace::synthetic(120, 0.0912, &mut rng),
    };
    let sim = SpotSimulator::new(trace, 0.0955);
    println!(
        "Spot trace: {} points, {} interruptions at max bid {}, availability {:.1}%",
        sim.trace().len(),
        sim.interruptions(),
        sim.max_bid(),
        sim.availability() * 100.0
    );
    let schedule = spot_crash_schedule(&sim, 3);
    let setup = TrainingSetup {
        cost: CostModel::eml_sgx_pm(),
        pm_bytes: 64 * 1024 * 1024,
        // Momentum 0 keeps this small model stable over the long interrupted
        // run (with momentum it can overshoot after converging).
        model_config: mnist_cnn_config_with_momentum(3, 8, 16, 0.0),
        dataset: synthetic_mnist(400, &mut rng),
        trainer: TrainerConfig {
            batch: 16,
            // Far enough to hit the first interruptions of the synthetic trace
            // (the schedule above kills training around iterations 78 and 111).
            max_iterations: 120,
            mirror_frequency: 1,
            encrypted_data: true,
            seed: 21,
            pipeline: PipelineMode::from_env(),
            ring_depth: plinius::ring_depth_from_env(),
            crypto: plinius::EnginePolicy::from_env(),
            gemm: plinius::GemmPolicy::from_env(),
        },
        backend: PersistenceBackend::PmMirror,
        model_seed: 4,
    };
    let report = train_with_crash_schedule(&setup, &schedule, true)?;
    println!(
        "Training finished at iteration {} after {} executed iterations and {} spot interruptions.",
        report.completed_iteration, report.total_iterations_executed, report.crashes
    );
    if let Some(last) = report.losses.last() {
        println!("Final loss: {last:.4}");
    }
    Ok(())
}
