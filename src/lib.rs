//! # plinius-repro
//!
//! Umbrella crate of the Plinius (DSN'21) reproduction. It re-exports every substrate so
//! the examples and integration tests can use one dependency:
//!
//! * [`plinius`] — the core framework (mirroring, PM data, trainer, workflow);
//! * [`plinius_crypto`], [`plinius_sgx`], [`plinius_pmem`], [`plinius_romulus`],
//!   [`plinius_darknet`], [`plinius_storage`], [`plinius_spot`] — the substrates;
//! * [`plinius_parallel`] — scoped-thread fork/join helpers for the compute hot path;
//! * [`sim_clock`] — the simulation clock and server cost models.
//!
//! See `README.md` for a guided tour and `examples/` for runnable programs.

pub use plinius;
pub use plinius_crypto;
pub use plinius_darknet;
pub use plinius_parallel;
pub use plinius_pmem;
pub use plinius_romulus;
pub use plinius_sgx;
pub use plinius_spot;
pub use plinius_storage;
pub use sim_clock;
