/root/repo/target/debug/deps/bin_smoke-3284d0fb66c9629a.d: crates/bench/tests/bin_smoke.rs

/root/repo/target/debug/deps/bin_smoke-3284d0fb66c9629a: crates/bench/tests/bin_smoke.rs

crates/bench/tests/bin_smoke.rs:

# env-dep:CARGO_BIN_EXE_fig10_spot=/root/repo/target/debug/fig10_spot
# env-dep:CARGO_BIN_EXE_fig2_fio=/root/repo/target/debug/fig2_fio
# env-dep:CARGO_BIN_EXE_fig6_sps=/root/repo/target/debug/fig6_sps
# env-dep:CARGO_BIN_EXE_fig7_mirroring=/root/repo/target/debug/fig7_mirroring
# env-dep:CARGO_BIN_EXE_fig8_batch=/root/repo/target/debug/fig8_batch
# env-dep:CARGO_BIN_EXE_fig9_crash=/root/repo/target/debug/fig9_crash
# env-dep:CARGO_BIN_EXE_inference_accuracy=/root/repo/target/debug/inference_accuracy
# env-dep:CARGO_BIN_EXE_table1_breakdown=/root/repo/target/debug/table1_breakdown
# env-dep:CARGO_BIN_EXE_tcb_report=/root/repo/target/debug/tcb_report
