/root/repo/target/debug/deps/bin_smoke-fc9e27a70e1f1a1c.d: crates/bench/tests/bin_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libbin_smoke-fc9e27a70e1f1a1c.rmeta: crates/bench/tests/bin_smoke.rs Cargo.toml

crates/bench/tests/bin_smoke.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_fig10_spot=placeholder:fig10_spot
# env-dep:CARGO_BIN_EXE_fig2_fio=placeholder:fig2_fio
# env-dep:CARGO_BIN_EXE_fig6_sps=placeholder:fig6_sps
# env-dep:CARGO_BIN_EXE_fig7_mirroring=placeholder:fig7_mirroring
# env-dep:CARGO_BIN_EXE_fig8_batch=placeholder:fig8_batch
# env-dep:CARGO_BIN_EXE_fig9_crash=placeholder:fig9_crash
# env-dep:CARGO_BIN_EXE_inference_accuracy=placeholder:inference_accuracy
# env-dep:CARGO_BIN_EXE_table1_breakdown=placeholder:table1_breakdown
# env-dep:CARGO_BIN_EXE_tcb_report=placeholder:tcb_report
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
