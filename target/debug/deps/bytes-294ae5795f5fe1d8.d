/root/repo/target/debug/deps/bytes-294ae5795f5fe1d8.d: crates/shims/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-294ae5795f5fe1d8.rmeta: crates/shims/bytes/src/lib.rs

crates/shims/bytes/src/lib.rs:
