/root/repo/target/debug/deps/bytes-34ff7c619eaaadbf.d: crates/shims/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-34ff7c619eaaadbf.rlib: crates/shims/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-34ff7c619eaaadbf.rmeta: crates/shims/bytes/src/lib.rs

crates/shims/bytes/src/lib.rs:
