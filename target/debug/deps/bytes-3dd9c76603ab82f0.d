/root/repo/target/debug/deps/bytes-3dd9c76603ab82f0.d: crates/shims/bytes/src/lib.rs

/root/repo/target/debug/deps/bytes-3dd9c76603ab82f0: crates/shims/bytes/src/lib.rs

crates/shims/bytes/src/lib.rs:
