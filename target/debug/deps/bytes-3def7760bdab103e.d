/root/repo/target/debug/deps/bytes-3def7760bdab103e.d: crates/shims/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-3def7760bdab103e.rmeta: crates/shims/bytes/src/lib.rs Cargo.toml

crates/shims/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
