/root/repo/target/debug/deps/bytes-6d4094b72f48da4c.d: crates/shims/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-6d4094b72f48da4c.rmeta: crates/shims/bytes/src/lib.rs

crates/shims/bytes/src/lib.rs:
