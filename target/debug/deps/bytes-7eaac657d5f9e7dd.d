/root/repo/target/debug/deps/bytes-7eaac657d5f9e7dd.d: crates/shims/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-7eaac657d5f9e7dd.rmeta: crates/shims/bytes/src/lib.rs Cargo.toml

crates/shims/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
