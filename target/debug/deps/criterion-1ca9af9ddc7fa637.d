/root/repo/target/debug/deps/criterion-1ca9af9ddc7fa637.d: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-1ca9af9ddc7fa637: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
