/root/repo/target/debug/deps/criterion-3a51b56702af748f.d: crates/shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-3a51b56702af748f.rmeta: crates/shims/criterion/src/lib.rs Cargo.toml

crates/shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
