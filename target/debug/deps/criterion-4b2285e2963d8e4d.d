/root/repo/target/debug/deps/criterion-4b2285e2963d8e4d.d: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-4b2285e2963d8e4d.rlib: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-4b2285e2963d8e4d.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
