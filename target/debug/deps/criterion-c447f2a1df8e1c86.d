/root/repo/target/debug/deps/criterion-c447f2a1df8e1c86.d: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-c447f2a1df8e1c86.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
