/root/repo/target/debug/deps/crypto-0de99d2bf1c6d3e1.d: crates/bench/benches/crypto.rs Cargo.toml

/root/repo/target/debug/deps/libcrypto-0de99d2bf1c6d3e1.rmeta: crates/bench/benches/crypto.rs Cargo.toml

crates/bench/benches/crypto.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
