/root/repo/target/debug/deps/crypto-4404a07ca1fc438a.d: crates/bench/benches/crypto.rs

/root/repo/target/debug/deps/libcrypto-4404a07ca1fc438a.rmeta: crates/bench/benches/crypto.rs

crates/bench/benches/crypto.rs:
