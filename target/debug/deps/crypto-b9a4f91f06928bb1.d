/root/repo/target/debug/deps/crypto-b9a4f91f06928bb1.d: crates/bench/benches/crypto.rs

/root/repo/target/debug/deps/libcrypto-b9a4f91f06928bb1.rmeta: crates/bench/benches/crypto.rs

crates/bench/benches/crypto.rs:
