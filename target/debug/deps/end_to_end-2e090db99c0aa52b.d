/root/repo/target/debug/deps/end_to_end-2e090db99c0aa52b.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-2e090db99c0aa52b: tests/end_to_end.rs

tests/end_to_end.rs:
