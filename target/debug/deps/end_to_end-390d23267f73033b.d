/root/repo/target/debug/deps/end_to_end-390d23267f73033b.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-390d23267f73033b.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
