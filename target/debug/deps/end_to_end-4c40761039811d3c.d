/root/repo/target/debug/deps/end_to_end-4c40761039811d3c.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-4c40761039811d3c.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
