/root/repo/target/debug/deps/end_to_end-60448d98a79355c5.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-60448d98a79355c5: tests/end_to_end.rs

tests/end_to_end.rs:
