/root/repo/target/debug/deps/fig10_spot-3ec4735e2b307aaa.d: crates/bench/src/bin/fig10_spot.rs

/root/repo/target/debug/deps/libfig10_spot-3ec4735e2b307aaa.rmeta: crates/bench/src/bin/fig10_spot.rs

crates/bench/src/bin/fig10_spot.rs:
