/root/repo/target/debug/deps/fig10_spot-50b1db9c502fc723.d: crates/bench/src/bin/fig10_spot.rs

/root/repo/target/debug/deps/fig10_spot-50b1db9c502fc723: crates/bench/src/bin/fig10_spot.rs

crates/bench/src/bin/fig10_spot.rs:
