/root/repo/target/debug/deps/fig10_spot-6b10eb00daada127.d: crates/bench/src/bin/fig10_spot.rs

/root/repo/target/debug/deps/fig10_spot-6b10eb00daada127: crates/bench/src/bin/fig10_spot.rs

crates/bench/src/bin/fig10_spot.rs:
