/root/repo/target/debug/deps/fig10_spot-753adbc6d2530ee6.d: crates/bench/src/bin/fig10_spot.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_spot-753adbc6d2530ee6.rmeta: crates/bench/src/bin/fig10_spot.rs Cargo.toml

crates/bench/src/bin/fig10_spot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
