/root/repo/target/debug/deps/fig10_spot-785e5c847491ebf9.d: crates/bench/src/bin/fig10_spot.rs

/root/repo/target/debug/deps/fig10_spot-785e5c847491ebf9: crates/bench/src/bin/fig10_spot.rs

crates/bench/src/bin/fig10_spot.rs:
