/root/repo/target/debug/deps/fig10_spot-8bce8e6e77f3485b.d: crates/bench/src/bin/fig10_spot.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_spot-8bce8e6e77f3485b.rmeta: crates/bench/src/bin/fig10_spot.rs Cargo.toml

crates/bench/src/bin/fig10_spot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
