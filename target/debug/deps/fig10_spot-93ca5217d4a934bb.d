/root/repo/target/debug/deps/fig10_spot-93ca5217d4a934bb.d: crates/bench/src/bin/fig10_spot.rs

/root/repo/target/debug/deps/libfig10_spot-93ca5217d4a934bb.rmeta: crates/bench/src/bin/fig10_spot.rs

crates/bench/src/bin/fig10_spot.rs:
