/root/repo/target/debug/deps/fig10_spot-9df8b8fc28259ad1.d: crates/bench/src/bin/fig10_spot.rs

/root/repo/target/debug/deps/libfig10_spot-9df8b8fc28259ad1.rmeta: crates/bench/src/bin/fig10_spot.rs

crates/bench/src/bin/fig10_spot.rs:
