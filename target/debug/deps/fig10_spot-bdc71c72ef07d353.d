/root/repo/target/debug/deps/fig10_spot-bdc71c72ef07d353.d: crates/bench/src/bin/fig10_spot.rs

/root/repo/target/debug/deps/fig10_spot-bdc71c72ef07d353: crates/bench/src/bin/fig10_spot.rs

crates/bench/src/bin/fig10_spot.rs:
