/root/repo/target/debug/deps/fig10_spot-ec61fd892f855291.d: crates/bench/src/bin/fig10_spot.rs

/root/repo/target/debug/deps/libfig10_spot-ec61fd892f855291.rmeta: crates/bench/src/bin/fig10_spot.rs

crates/bench/src/bin/fig10_spot.rs:
