/root/repo/target/debug/deps/fig2_fio-1f097e034e36c629.d: crates/bench/src/bin/fig2_fio.rs

/root/repo/target/debug/deps/fig2_fio-1f097e034e36c629: crates/bench/src/bin/fig2_fio.rs

crates/bench/src/bin/fig2_fio.rs:
