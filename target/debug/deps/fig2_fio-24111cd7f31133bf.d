/root/repo/target/debug/deps/fig2_fio-24111cd7f31133bf.d: crates/bench/src/bin/fig2_fio.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_fio-24111cd7f31133bf.rmeta: crates/bench/src/bin/fig2_fio.rs Cargo.toml

crates/bench/src/bin/fig2_fio.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
