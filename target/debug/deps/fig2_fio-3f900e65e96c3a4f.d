/root/repo/target/debug/deps/fig2_fio-3f900e65e96c3a4f.d: crates/bench/src/bin/fig2_fio.rs

/root/repo/target/debug/deps/libfig2_fio-3f900e65e96c3a4f.rmeta: crates/bench/src/bin/fig2_fio.rs

crates/bench/src/bin/fig2_fio.rs:
