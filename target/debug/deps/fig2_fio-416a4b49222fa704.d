/root/repo/target/debug/deps/fig2_fio-416a4b49222fa704.d: crates/bench/src/bin/fig2_fio.rs

/root/repo/target/debug/deps/libfig2_fio-416a4b49222fa704.rmeta: crates/bench/src/bin/fig2_fio.rs

crates/bench/src/bin/fig2_fio.rs:
