/root/repo/target/debug/deps/fig2_fio-5b016eaff373fb6d.d: crates/bench/src/bin/fig2_fio.rs

/root/repo/target/debug/deps/libfig2_fio-5b016eaff373fb6d.rmeta: crates/bench/src/bin/fig2_fio.rs

crates/bench/src/bin/fig2_fio.rs:
