/root/repo/target/debug/deps/fig2_fio-68fbbc58516af64f.d: crates/bench/src/bin/fig2_fio.rs

/root/repo/target/debug/deps/libfig2_fio-68fbbc58516af64f.rmeta: crates/bench/src/bin/fig2_fio.rs

crates/bench/src/bin/fig2_fio.rs:
