/root/repo/target/debug/deps/fig2_fio-7d41695d5cd5ab93.d: crates/bench/src/bin/fig2_fio.rs

/root/repo/target/debug/deps/fig2_fio-7d41695d5cd5ab93: crates/bench/src/bin/fig2_fio.rs

crates/bench/src/bin/fig2_fio.rs:
