/root/repo/target/debug/deps/fig2_fio-892976d63561eae8.d: crates/bench/src/bin/fig2_fio.rs

/root/repo/target/debug/deps/fig2_fio-892976d63561eae8: crates/bench/src/bin/fig2_fio.rs

crates/bench/src/bin/fig2_fio.rs:
