/root/repo/target/debug/deps/fig2_fio-c0899b1d9ac8fe15.d: crates/bench/src/bin/fig2_fio.rs

/root/repo/target/debug/deps/fig2_fio-c0899b1d9ac8fe15: crates/bench/src/bin/fig2_fio.rs

crates/bench/src/bin/fig2_fio.rs:
