/root/repo/target/debug/deps/fig6_sps-0b75caaef69ea29a.d: crates/bench/src/bin/fig6_sps.rs

/root/repo/target/debug/deps/libfig6_sps-0b75caaef69ea29a.rmeta: crates/bench/src/bin/fig6_sps.rs

crates/bench/src/bin/fig6_sps.rs:
