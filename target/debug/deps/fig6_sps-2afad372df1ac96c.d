/root/repo/target/debug/deps/fig6_sps-2afad372df1ac96c.d: crates/bench/src/bin/fig6_sps.rs

/root/repo/target/debug/deps/fig6_sps-2afad372df1ac96c: crates/bench/src/bin/fig6_sps.rs

crates/bench/src/bin/fig6_sps.rs:
