/root/repo/target/debug/deps/fig6_sps-38a16ced685ba869.d: crates/bench/src/bin/fig6_sps.rs

/root/repo/target/debug/deps/fig6_sps-38a16ced685ba869: crates/bench/src/bin/fig6_sps.rs

crates/bench/src/bin/fig6_sps.rs:
