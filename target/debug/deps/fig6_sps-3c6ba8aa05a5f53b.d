/root/repo/target/debug/deps/fig6_sps-3c6ba8aa05a5f53b.d: crates/bench/src/bin/fig6_sps.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_sps-3c6ba8aa05a5f53b.rmeta: crates/bench/src/bin/fig6_sps.rs Cargo.toml

crates/bench/src/bin/fig6_sps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
