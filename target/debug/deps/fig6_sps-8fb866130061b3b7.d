/root/repo/target/debug/deps/fig6_sps-8fb866130061b3b7.d: crates/bench/src/bin/fig6_sps.rs

/root/repo/target/debug/deps/fig6_sps-8fb866130061b3b7: crates/bench/src/bin/fig6_sps.rs

crates/bench/src/bin/fig6_sps.rs:
