/root/repo/target/debug/deps/fig6_sps-999a2af3b3e50890.d: crates/bench/src/bin/fig6_sps.rs

/root/repo/target/debug/deps/fig6_sps-999a2af3b3e50890: crates/bench/src/bin/fig6_sps.rs

crates/bench/src/bin/fig6_sps.rs:
