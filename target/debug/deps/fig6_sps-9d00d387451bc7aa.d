/root/repo/target/debug/deps/fig6_sps-9d00d387451bc7aa.d: crates/bench/src/bin/fig6_sps.rs

/root/repo/target/debug/deps/libfig6_sps-9d00d387451bc7aa.rmeta: crates/bench/src/bin/fig6_sps.rs

crates/bench/src/bin/fig6_sps.rs:
