/root/repo/target/debug/deps/fig6_sps-bc495a8cb0db13cf.d: crates/bench/src/bin/fig6_sps.rs

/root/repo/target/debug/deps/libfig6_sps-bc495a8cb0db13cf.rmeta: crates/bench/src/bin/fig6_sps.rs

crates/bench/src/bin/fig6_sps.rs:
