/root/repo/target/debug/deps/fig6_sps-c33eef22ad4e322e.d: crates/bench/src/bin/fig6_sps.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_sps-c33eef22ad4e322e.rmeta: crates/bench/src/bin/fig6_sps.rs Cargo.toml

crates/bench/src/bin/fig6_sps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
