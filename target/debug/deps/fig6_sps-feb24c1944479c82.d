/root/repo/target/debug/deps/fig6_sps-feb24c1944479c82.d: crates/bench/src/bin/fig6_sps.rs

/root/repo/target/debug/deps/libfig6_sps-feb24c1944479c82.rmeta: crates/bench/src/bin/fig6_sps.rs

crates/bench/src/bin/fig6_sps.rs:
