/root/repo/target/debug/deps/fig7_mirroring-0d50285a400bc97e.d: crates/bench/src/bin/fig7_mirroring.rs

/root/repo/target/debug/deps/libfig7_mirroring-0d50285a400bc97e.rmeta: crates/bench/src/bin/fig7_mirroring.rs

crates/bench/src/bin/fig7_mirroring.rs:
