/root/repo/target/debug/deps/fig7_mirroring-69682deed3f2db4d.d: crates/bench/src/bin/fig7_mirroring.rs

/root/repo/target/debug/deps/libfig7_mirroring-69682deed3f2db4d.rmeta: crates/bench/src/bin/fig7_mirroring.rs

crates/bench/src/bin/fig7_mirroring.rs:
