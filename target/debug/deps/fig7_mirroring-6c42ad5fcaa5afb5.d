/root/repo/target/debug/deps/fig7_mirroring-6c42ad5fcaa5afb5.d: crates/bench/src/bin/fig7_mirroring.rs

/root/repo/target/debug/deps/libfig7_mirroring-6c42ad5fcaa5afb5.rmeta: crates/bench/src/bin/fig7_mirroring.rs

crates/bench/src/bin/fig7_mirroring.rs:
