/root/repo/target/debug/deps/fig7_mirroring-8caf8a6b92dcbc3e.d: crates/bench/src/bin/fig7_mirroring.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_mirroring-8caf8a6b92dcbc3e.rmeta: crates/bench/src/bin/fig7_mirroring.rs Cargo.toml

crates/bench/src/bin/fig7_mirroring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
