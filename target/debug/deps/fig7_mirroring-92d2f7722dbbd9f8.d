/root/repo/target/debug/deps/fig7_mirroring-92d2f7722dbbd9f8.d: crates/bench/src/bin/fig7_mirroring.rs

/root/repo/target/debug/deps/fig7_mirroring-92d2f7722dbbd9f8: crates/bench/src/bin/fig7_mirroring.rs

crates/bench/src/bin/fig7_mirroring.rs:
