/root/repo/target/debug/deps/fig7_mirroring-9b63f0201e1c83af.d: crates/bench/src/bin/fig7_mirroring.rs

/root/repo/target/debug/deps/libfig7_mirroring-9b63f0201e1c83af.rmeta: crates/bench/src/bin/fig7_mirroring.rs

crates/bench/src/bin/fig7_mirroring.rs:
