/root/repo/target/debug/deps/fig7_mirroring-b9458befbc912a60.d: crates/bench/src/bin/fig7_mirroring.rs

/root/repo/target/debug/deps/fig7_mirroring-b9458befbc912a60: crates/bench/src/bin/fig7_mirroring.rs

crates/bench/src/bin/fig7_mirroring.rs:
