/root/repo/target/debug/deps/fig7_mirroring-dc0162b5c599bfb6.d: crates/bench/src/bin/fig7_mirroring.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_mirroring-dc0162b5c599bfb6.rmeta: crates/bench/src/bin/fig7_mirroring.rs Cargo.toml

crates/bench/src/bin/fig7_mirroring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
