/root/repo/target/debug/deps/fig7_mirroring-ed03752700060335.d: crates/bench/src/bin/fig7_mirroring.rs

/root/repo/target/debug/deps/fig7_mirroring-ed03752700060335: crates/bench/src/bin/fig7_mirroring.rs

crates/bench/src/bin/fig7_mirroring.rs:
