/root/repo/target/debug/deps/fig7_mirroring-f5611c12ca7ec648.d: crates/bench/src/bin/fig7_mirroring.rs

/root/repo/target/debug/deps/fig7_mirroring-f5611c12ca7ec648: crates/bench/src/bin/fig7_mirroring.rs

crates/bench/src/bin/fig7_mirroring.rs:
