/root/repo/target/debug/deps/fig8_batch-02bf4c18826e0fe5.d: crates/bench/src/bin/fig8_batch.rs

/root/repo/target/debug/deps/fig8_batch-02bf4c18826e0fe5: crates/bench/src/bin/fig8_batch.rs

crates/bench/src/bin/fig8_batch.rs:
