/root/repo/target/debug/deps/fig8_batch-0cb95c235abf3f35.d: crates/bench/src/bin/fig8_batch.rs

/root/repo/target/debug/deps/libfig8_batch-0cb95c235abf3f35.rmeta: crates/bench/src/bin/fig8_batch.rs

crates/bench/src/bin/fig8_batch.rs:
