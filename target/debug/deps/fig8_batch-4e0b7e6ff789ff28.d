/root/repo/target/debug/deps/fig8_batch-4e0b7e6ff789ff28.d: crates/bench/src/bin/fig8_batch.rs

/root/repo/target/debug/deps/libfig8_batch-4e0b7e6ff789ff28.rmeta: crates/bench/src/bin/fig8_batch.rs

crates/bench/src/bin/fig8_batch.rs:
