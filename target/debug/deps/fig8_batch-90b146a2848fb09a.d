/root/repo/target/debug/deps/fig8_batch-90b146a2848fb09a.d: crates/bench/src/bin/fig8_batch.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_batch-90b146a2848fb09a.rmeta: crates/bench/src/bin/fig8_batch.rs Cargo.toml

crates/bench/src/bin/fig8_batch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
