/root/repo/target/debug/deps/fig8_batch-a0df0c79ce2f3ec7.d: crates/bench/src/bin/fig8_batch.rs

/root/repo/target/debug/deps/fig8_batch-a0df0c79ce2f3ec7: crates/bench/src/bin/fig8_batch.rs

crates/bench/src/bin/fig8_batch.rs:
