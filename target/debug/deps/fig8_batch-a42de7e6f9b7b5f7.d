/root/repo/target/debug/deps/fig8_batch-a42de7e6f9b7b5f7.d: crates/bench/src/bin/fig8_batch.rs

/root/repo/target/debug/deps/fig8_batch-a42de7e6f9b7b5f7: crates/bench/src/bin/fig8_batch.rs

crates/bench/src/bin/fig8_batch.rs:
