/root/repo/target/debug/deps/fig8_batch-a6ac522ec254a0eb.d: crates/bench/src/bin/fig8_batch.rs

/root/repo/target/debug/deps/libfig8_batch-a6ac522ec254a0eb.rmeta: crates/bench/src/bin/fig8_batch.rs

crates/bench/src/bin/fig8_batch.rs:
