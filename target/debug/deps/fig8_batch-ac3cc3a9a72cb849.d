/root/repo/target/debug/deps/fig8_batch-ac3cc3a9a72cb849.d: crates/bench/src/bin/fig8_batch.rs

/root/repo/target/debug/deps/libfig8_batch-ac3cc3a9a72cb849.rmeta: crates/bench/src/bin/fig8_batch.rs

crates/bench/src/bin/fig8_batch.rs:
