/root/repo/target/debug/deps/fig8_batch-ad19494610911d09.d: crates/bench/src/bin/fig8_batch.rs

/root/repo/target/debug/deps/fig8_batch-ad19494610911d09: crates/bench/src/bin/fig8_batch.rs

crates/bench/src/bin/fig8_batch.rs:
