/root/repo/target/debug/deps/fig8_batch-b7ed952770c8e83d.d: crates/bench/src/bin/fig8_batch.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_batch-b7ed952770c8e83d.rmeta: crates/bench/src/bin/fig8_batch.rs Cargo.toml

crates/bench/src/bin/fig8_batch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
