/root/repo/target/debug/deps/fig9_crash-2bcbfa2e26a2329e.d: crates/bench/src/bin/fig9_crash.rs

/root/repo/target/debug/deps/libfig9_crash-2bcbfa2e26a2329e.rmeta: crates/bench/src/bin/fig9_crash.rs

crates/bench/src/bin/fig9_crash.rs:
