/root/repo/target/debug/deps/fig9_crash-2f663876e32cb008.d: crates/bench/src/bin/fig9_crash.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_crash-2f663876e32cb008.rmeta: crates/bench/src/bin/fig9_crash.rs Cargo.toml

crates/bench/src/bin/fig9_crash.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
