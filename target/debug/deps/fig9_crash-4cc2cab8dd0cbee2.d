/root/repo/target/debug/deps/fig9_crash-4cc2cab8dd0cbee2.d: crates/bench/src/bin/fig9_crash.rs

/root/repo/target/debug/deps/libfig9_crash-4cc2cab8dd0cbee2.rmeta: crates/bench/src/bin/fig9_crash.rs

crates/bench/src/bin/fig9_crash.rs:
