/root/repo/target/debug/deps/fig9_crash-546d9b038e1b3610.d: crates/bench/src/bin/fig9_crash.rs

/root/repo/target/debug/deps/libfig9_crash-546d9b038e1b3610.rmeta: crates/bench/src/bin/fig9_crash.rs

crates/bench/src/bin/fig9_crash.rs:
