/root/repo/target/debug/deps/fig9_crash-6f65f1c8b54c234f.d: crates/bench/src/bin/fig9_crash.rs

/root/repo/target/debug/deps/fig9_crash-6f65f1c8b54c234f: crates/bench/src/bin/fig9_crash.rs

crates/bench/src/bin/fig9_crash.rs:
