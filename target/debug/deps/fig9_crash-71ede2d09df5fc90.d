/root/repo/target/debug/deps/fig9_crash-71ede2d09df5fc90.d: crates/bench/src/bin/fig9_crash.rs

/root/repo/target/debug/deps/fig9_crash-71ede2d09df5fc90: crates/bench/src/bin/fig9_crash.rs

crates/bench/src/bin/fig9_crash.rs:
