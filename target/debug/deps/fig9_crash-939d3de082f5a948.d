/root/repo/target/debug/deps/fig9_crash-939d3de082f5a948.d: crates/bench/src/bin/fig9_crash.rs

/root/repo/target/debug/deps/libfig9_crash-939d3de082f5a948.rmeta: crates/bench/src/bin/fig9_crash.rs

crates/bench/src/bin/fig9_crash.rs:
