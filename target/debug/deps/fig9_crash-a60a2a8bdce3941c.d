/root/repo/target/debug/deps/fig9_crash-a60a2a8bdce3941c.d: crates/bench/src/bin/fig9_crash.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_crash-a60a2a8bdce3941c.rmeta: crates/bench/src/bin/fig9_crash.rs Cargo.toml

crates/bench/src/bin/fig9_crash.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
