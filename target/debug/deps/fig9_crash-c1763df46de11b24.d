/root/repo/target/debug/deps/fig9_crash-c1763df46de11b24.d: crates/bench/src/bin/fig9_crash.rs

/root/repo/target/debug/deps/fig9_crash-c1763df46de11b24: crates/bench/src/bin/fig9_crash.rs

crates/bench/src/bin/fig9_crash.rs:
