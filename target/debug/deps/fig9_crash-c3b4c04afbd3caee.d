/root/repo/target/debug/deps/fig9_crash-c3b4c04afbd3caee.d: crates/bench/src/bin/fig9_crash.rs

/root/repo/target/debug/deps/fig9_crash-c3b4c04afbd3caee: crates/bench/src/bin/fig9_crash.rs

crates/bench/src/bin/fig9_crash.rs:
