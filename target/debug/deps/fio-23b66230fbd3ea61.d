/root/repo/target/debug/deps/fio-23b66230fbd3ea61.d: crates/bench/benches/fio.rs Cargo.toml

/root/repo/target/debug/deps/libfio-23b66230fbd3ea61.rmeta: crates/bench/benches/fio.rs Cargo.toml

crates/bench/benches/fio.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
