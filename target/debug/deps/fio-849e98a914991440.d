/root/repo/target/debug/deps/fio-849e98a914991440.d: crates/bench/benches/fio.rs

/root/repo/target/debug/deps/libfio-849e98a914991440.rmeta: crates/bench/benches/fio.rs

crates/bench/benches/fio.rs:
