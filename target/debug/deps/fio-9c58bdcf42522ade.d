/root/repo/target/debug/deps/fio-9c58bdcf42522ade.d: crates/bench/benches/fio.rs

/root/repo/target/debug/deps/libfio-9c58bdcf42522ade.rmeta: crates/bench/benches/fio.rs

crates/bench/benches/fio.rs:
