/root/repo/target/debug/deps/inference_accuracy-316c5c50fe4cc79d.d: crates/bench/src/bin/inference_accuracy.rs

/root/repo/target/debug/deps/inference_accuracy-316c5c50fe4cc79d: crates/bench/src/bin/inference_accuracy.rs

crates/bench/src/bin/inference_accuracy.rs:
