/root/repo/target/debug/deps/inference_accuracy-421694afc36dd050.d: crates/bench/src/bin/inference_accuracy.rs

/root/repo/target/debug/deps/libinference_accuracy-421694afc36dd050.rmeta: crates/bench/src/bin/inference_accuracy.rs

crates/bench/src/bin/inference_accuracy.rs:
