/root/repo/target/debug/deps/inference_accuracy-51c4b75a5d7c3dbb.d: crates/bench/src/bin/inference_accuracy.rs

/root/repo/target/debug/deps/libinference_accuracy-51c4b75a5d7c3dbb.rmeta: crates/bench/src/bin/inference_accuracy.rs

crates/bench/src/bin/inference_accuracy.rs:
