/root/repo/target/debug/deps/inference_accuracy-959d8a95ff209469.d: crates/bench/src/bin/inference_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libinference_accuracy-959d8a95ff209469.rmeta: crates/bench/src/bin/inference_accuracy.rs Cargo.toml

crates/bench/src/bin/inference_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
