/root/repo/target/debug/deps/inference_accuracy-a28c927d43cc6c19.d: crates/bench/src/bin/inference_accuracy.rs

/root/repo/target/debug/deps/inference_accuracy-a28c927d43cc6c19: crates/bench/src/bin/inference_accuracy.rs

crates/bench/src/bin/inference_accuracy.rs:
