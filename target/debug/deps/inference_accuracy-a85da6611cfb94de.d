/root/repo/target/debug/deps/inference_accuracy-a85da6611cfb94de.d: crates/bench/src/bin/inference_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libinference_accuracy-a85da6611cfb94de.rmeta: crates/bench/src/bin/inference_accuracy.rs Cargo.toml

crates/bench/src/bin/inference_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
