/root/repo/target/debug/deps/inference_accuracy-c7d54973d7c4db51.d: crates/bench/src/bin/inference_accuracy.rs

/root/repo/target/debug/deps/libinference_accuracy-c7d54973d7c4db51.rmeta: crates/bench/src/bin/inference_accuracy.rs

crates/bench/src/bin/inference_accuracy.rs:
