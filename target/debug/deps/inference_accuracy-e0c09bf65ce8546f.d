/root/repo/target/debug/deps/inference_accuracy-e0c09bf65ce8546f.d: crates/bench/src/bin/inference_accuracy.rs

/root/repo/target/debug/deps/inference_accuracy-e0c09bf65ce8546f: crates/bench/src/bin/inference_accuracy.rs

crates/bench/src/bin/inference_accuracy.rs:
