/root/repo/target/debug/deps/inference_accuracy-e10932427452ebbf.d: crates/bench/src/bin/inference_accuracy.rs

/root/repo/target/debug/deps/inference_accuracy-e10932427452ebbf: crates/bench/src/bin/inference_accuracy.rs

crates/bench/src/bin/inference_accuracy.rs:
