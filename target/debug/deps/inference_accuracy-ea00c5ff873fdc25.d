/root/repo/target/debug/deps/inference_accuracy-ea00c5ff873fdc25.d: crates/bench/src/bin/inference_accuracy.rs

/root/repo/target/debug/deps/libinference_accuracy-ea00c5ff873fdc25.rmeta: crates/bench/src/bin/inference_accuracy.rs

crates/bench/src/bin/inference_accuracy.rs:
