/root/repo/target/debug/deps/iteration-7e7d8711caa32e69.d: crates/bench/benches/iteration.rs Cargo.toml

/root/repo/target/debug/deps/libiteration-7e7d8711caa32e69.rmeta: crates/bench/benches/iteration.rs Cargo.toml

crates/bench/benches/iteration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
