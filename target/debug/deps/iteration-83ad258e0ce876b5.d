/root/repo/target/debug/deps/iteration-83ad258e0ce876b5.d: crates/bench/benches/iteration.rs

/root/repo/target/debug/deps/libiteration-83ad258e0ce876b5.rmeta: crates/bench/benches/iteration.rs

crates/bench/benches/iteration.rs:
