/root/repo/target/debug/deps/iteration-b731ee9d07e60891.d: crates/bench/benches/iteration.rs

/root/repo/target/debug/deps/libiteration-b731ee9d07e60891.rmeta: crates/bench/benches/iteration.rs

crates/bench/benches/iteration.rs:
