/root/repo/target/debug/deps/mirroring-867976f4b33616ad.d: crates/bench/benches/mirroring.rs

/root/repo/target/debug/deps/libmirroring-867976f4b33616ad.rmeta: crates/bench/benches/mirroring.rs

crates/bench/benches/mirroring.rs:
