/root/repo/target/debug/deps/mirroring-d74ffdf83c5faced.d: crates/bench/benches/mirroring.rs

/root/repo/target/debug/deps/libmirroring-d74ffdf83c5faced.rmeta: crates/bench/benches/mirroring.rs

crates/bench/benches/mirroring.rs:
