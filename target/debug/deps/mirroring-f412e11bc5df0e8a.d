/root/repo/target/debug/deps/mirroring-f412e11bc5df0e8a.d: crates/bench/benches/mirroring.rs Cargo.toml

/root/repo/target/debug/deps/libmirroring-f412e11bc5df0e8a.rmeta: crates/bench/benches/mirroring.rs Cargo.toml

crates/bench/benches/mirroring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
