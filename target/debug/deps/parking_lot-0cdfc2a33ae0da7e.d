/root/repo/target/debug/deps/parking_lot-0cdfc2a33ae0da7e.d: crates/shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-0cdfc2a33ae0da7e.rmeta: crates/shims/parking_lot/src/lib.rs

crates/shims/parking_lot/src/lib.rs:
