/root/repo/target/debug/deps/parking_lot-258ecc4a7ca9bbcb.d: crates/shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-258ecc4a7ca9bbcb: crates/shims/parking_lot/src/lib.rs

crates/shims/parking_lot/src/lib.rs:
