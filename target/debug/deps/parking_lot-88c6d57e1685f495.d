/root/repo/target/debug/deps/parking_lot-88c6d57e1685f495.d: crates/shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-88c6d57e1685f495.rlib: crates/shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-88c6d57e1685f495.rmeta: crates/shims/parking_lot/src/lib.rs

crates/shims/parking_lot/src/lib.rs:
