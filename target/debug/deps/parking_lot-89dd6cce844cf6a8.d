/root/repo/target/debug/deps/parking_lot-89dd6cce844cf6a8.d: crates/shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-89dd6cce844cf6a8.rmeta: crates/shims/parking_lot/src/lib.rs

crates/shims/parking_lot/src/lib.rs:
