/root/repo/target/debug/deps/parking_lot-e4999e9561ce0301.d: crates/shims/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparking_lot-e4999e9561ce0301.rmeta: crates/shims/parking_lot/src/lib.rs Cargo.toml

crates/shims/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
