/root/repo/target/debug/deps/parking_lot-f4280c83cd9d408d.d: crates/shims/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparking_lot-f4280c83cd9d408d.rmeta: crates/shims/parking_lot/src/lib.rs Cargo.toml

crates/shims/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
