/root/repo/target/debug/deps/plinius-22a7ff7f1729583b.d: crates/plinius/src/lib.rs crates/plinius/src/mirror.rs crates/plinius/src/pmdata.rs crates/plinius/src/ssd.rs crates/plinius/src/trainer.rs crates/plinius/src/workflow.rs

/root/repo/target/debug/deps/plinius-22a7ff7f1729583b: crates/plinius/src/lib.rs crates/plinius/src/mirror.rs crates/plinius/src/pmdata.rs crates/plinius/src/ssd.rs crates/plinius/src/trainer.rs crates/plinius/src/workflow.rs

crates/plinius/src/lib.rs:
crates/plinius/src/mirror.rs:
crates/plinius/src/pmdata.rs:
crates/plinius/src/ssd.rs:
crates/plinius/src/trainer.rs:
crates/plinius/src/workflow.rs:
