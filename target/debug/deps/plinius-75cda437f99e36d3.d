/root/repo/target/debug/deps/plinius-75cda437f99e36d3.d: crates/plinius/src/lib.rs crates/plinius/src/mirror.rs crates/plinius/src/pmdata.rs crates/plinius/src/ssd.rs crates/plinius/src/trainer.rs crates/plinius/src/workflow.rs

/root/repo/target/debug/deps/libplinius-75cda437f99e36d3.rlib: crates/plinius/src/lib.rs crates/plinius/src/mirror.rs crates/plinius/src/pmdata.rs crates/plinius/src/ssd.rs crates/plinius/src/trainer.rs crates/plinius/src/workflow.rs

/root/repo/target/debug/deps/libplinius-75cda437f99e36d3.rmeta: crates/plinius/src/lib.rs crates/plinius/src/mirror.rs crates/plinius/src/pmdata.rs crates/plinius/src/ssd.rs crates/plinius/src/trainer.rs crates/plinius/src/workflow.rs

crates/plinius/src/lib.rs:
crates/plinius/src/mirror.rs:
crates/plinius/src/pmdata.rs:
crates/plinius/src/ssd.rs:
crates/plinius/src/trainer.rs:
crates/plinius/src/workflow.rs:
