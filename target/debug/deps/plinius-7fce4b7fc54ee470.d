/root/repo/target/debug/deps/plinius-7fce4b7fc54ee470.d: crates/plinius/src/lib.rs crates/plinius/src/mirror.rs crates/plinius/src/pmdata.rs crates/plinius/src/ssd.rs crates/plinius/src/trainer.rs crates/plinius/src/workflow.rs

/root/repo/target/debug/deps/libplinius-7fce4b7fc54ee470.rmeta: crates/plinius/src/lib.rs crates/plinius/src/mirror.rs crates/plinius/src/pmdata.rs crates/plinius/src/ssd.rs crates/plinius/src/trainer.rs crates/plinius/src/workflow.rs

crates/plinius/src/lib.rs:
crates/plinius/src/mirror.rs:
crates/plinius/src/pmdata.rs:
crates/plinius/src/ssd.rs:
crates/plinius/src/trainer.rs:
crates/plinius/src/workflow.rs:
