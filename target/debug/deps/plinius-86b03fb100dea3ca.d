/root/repo/target/debug/deps/plinius-86b03fb100dea3ca.d: crates/plinius/src/lib.rs crates/plinius/src/mirror.rs crates/plinius/src/pmdata.rs crates/plinius/src/ssd.rs crates/plinius/src/trainer.rs crates/plinius/src/workflow.rs

/root/repo/target/debug/deps/libplinius-86b03fb100dea3ca.rmeta: crates/plinius/src/lib.rs crates/plinius/src/mirror.rs crates/plinius/src/pmdata.rs crates/plinius/src/ssd.rs crates/plinius/src/trainer.rs crates/plinius/src/workflow.rs

crates/plinius/src/lib.rs:
crates/plinius/src/mirror.rs:
crates/plinius/src/pmdata.rs:
crates/plinius/src/ssd.rs:
crates/plinius/src/trainer.rs:
crates/plinius/src/workflow.rs:
