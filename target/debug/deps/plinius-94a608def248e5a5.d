/root/repo/target/debug/deps/plinius-94a608def248e5a5.d: crates/plinius/src/lib.rs crates/plinius/src/mirror.rs crates/plinius/src/pmdata.rs crates/plinius/src/ssd.rs crates/plinius/src/trainer.rs crates/plinius/src/workflow.rs

/root/repo/target/debug/deps/plinius-94a608def248e5a5: crates/plinius/src/lib.rs crates/plinius/src/mirror.rs crates/plinius/src/pmdata.rs crates/plinius/src/ssd.rs crates/plinius/src/trainer.rs crates/plinius/src/workflow.rs

crates/plinius/src/lib.rs:
crates/plinius/src/mirror.rs:
crates/plinius/src/pmdata.rs:
crates/plinius/src/ssd.rs:
crates/plinius/src/trainer.rs:
crates/plinius/src/workflow.rs:
