/root/repo/target/debug/deps/plinius-cb59129c0b0f9fd7.d: crates/plinius/src/lib.rs crates/plinius/src/mirror.rs crates/plinius/src/pmdata.rs crates/plinius/src/ssd.rs crates/plinius/src/trainer.rs crates/plinius/src/workflow.rs

/root/repo/target/debug/deps/libplinius-cb59129c0b0f9fd7.rmeta: crates/plinius/src/lib.rs crates/plinius/src/mirror.rs crates/plinius/src/pmdata.rs crates/plinius/src/ssd.rs crates/plinius/src/trainer.rs crates/plinius/src/workflow.rs

crates/plinius/src/lib.rs:
crates/plinius/src/mirror.rs:
crates/plinius/src/pmdata.rs:
crates/plinius/src/ssd.rs:
crates/plinius/src/trainer.rs:
crates/plinius/src/workflow.rs:
