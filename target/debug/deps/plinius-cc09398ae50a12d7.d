/root/repo/target/debug/deps/plinius-cc09398ae50a12d7.d: crates/plinius/src/lib.rs crates/plinius/src/mirror.rs crates/plinius/src/pmdata.rs crates/plinius/src/ssd.rs crates/plinius/src/trainer.rs crates/plinius/src/workflow.rs

/root/repo/target/debug/deps/libplinius-cc09398ae50a12d7.rlib: crates/plinius/src/lib.rs crates/plinius/src/mirror.rs crates/plinius/src/pmdata.rs crates/plinius/src/ssd.rs crates/plinius/src/trainer.rs crates/plinius/src/workflow.rs

/root/repo/target/debug/deps/libplinius-cc09398ae50a12d7.rmeta: crates/plinius/src/lib.rs crates/plinius/src/mirror.rs crates/plinius/src/pmdata.rs crates/plinius/src/ssd.rs crates/plinius/src/trainer.rs crates/plinius/src/workflow.rs

crates/plinius/src/lib.rs:
crates/plinius/src/mirror.rs:
crates/plinius/src/pmdata.rs:
crates/plinius/src/ssd.rs:
crates/plinius/src/trainer.rs:
crates/plinius/src/workflow.rs:
