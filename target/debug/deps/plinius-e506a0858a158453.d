/root/repo/target/debug/deps/plinius-e506a0858a158453.d: crates/plinius/src/lib.rs crates/plinius/src/mirror.rs crates/plinius/src/pmdata.rs crates/plinius/src/ssd.rs crates/plinius/src/trainer.rs crates/plinius/src/workflow.rs

/root/repo/target/debug/deps/libplinius-e506a0858a158453.rmeta: crates/plinius/src/lib.rs crates/plinius/src/mirror.rs crates/plinius/src/pmdata.rs crates/plinius/src/ssd.rs crates/plinius/src/trainer.rs crates/plinius/src/workflow.rs

crates/plinius/src/lib.rs:
crates/plinius/src/mirror.rs:
crates/plinius/src/pmdata.rs:
crates/plinius/src/ssd.rs:
crates/plinius/src/trainer.rs:
crates/plinius/src/workflow.rs:
