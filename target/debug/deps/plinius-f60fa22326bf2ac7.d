/root/repo/target/debug/deps/plinius-f60fa22326bf2ac7.d: crates/plinius/src/lib.rs crates/plinius/src/mirror.rs crates/plinius/src/pmdata.rs crates/plinius/src/ssd.rs crates/plinius/src/trainer.rs crates/plinius/src/workflow.rs Cargo.toml

/root/repo/target/debug/deps/libplinius-f60fa22326bf2ac7.rmeta: crates/plinius/src/lib.rs crates/plinius/src/mirror.rs crates/plinius/src/pmdata.rs crates/plinius/src/ssd.rs crates/plinius/src/trainer.rs crates/plinius/src/workflow.rs Cargo.toml

crates/plinius/src/lib.rs:
crates/plinius/src/mirror.rs:
crates/plinius/src/pmdata.rs:
crates/plinius/src/ssd.rs:
crates/plinius/src/trainer.rs:
crates/plinius/src/workflow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
