/root/repo/target/debug/deps/plinius_bench-2cabfe5676904e4c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libplinius_bench-2cabfe5676904e4c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
