/root/repo/target/debug/deps/plinius_bench-41f4136b10ced1ee.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/plinius_bench-41f4136b10ced1ee: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
