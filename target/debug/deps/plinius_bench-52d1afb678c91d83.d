/root/repo/target/debug/deps/plinius_bench-52d1afb678c91d83.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/plinius_bench-52d1afb678c91d83: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
