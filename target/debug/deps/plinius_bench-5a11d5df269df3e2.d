/root/repo/target/debug/deps/plinius_bench-5a11d5df269df3e2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libplinius_bench-5a11d5df269df3e2.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
