/root/repo/target/debug/deps/plinius_bench-76d511f25b6b5145.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libplinius_bench-76d511f25b6b5145.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libplinius_bench-76d511f25b6b5145.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
