/root/repo/target/debug/deps/plinius_bench-93da70f92b4f144b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libplinius_bench-93da70f92b4f144b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
