/root/repo/target/debug/deps/plinius_bench-9a45bd2f85d2d84e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libplinius_bench-9a45bd2f85d2d84e.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libplinius_bench-9a45bd2f85d2d84e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
