/root/repo/target/debug/deps/plinius_bench-a2349d9bbf9d7689.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libplinius_bench-a2349d9bbf9d7689.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
