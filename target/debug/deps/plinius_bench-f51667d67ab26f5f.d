/root/repo/target/debug/deps/plinius_bench-f51667d67ab26f5f.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libplinius_bench-f51667d67ab26f5f.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
