/root/repo/target/debug/deps/plinius_bench-fc4351cef667940a.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libplinius_bench-fc4351cef667940a.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
