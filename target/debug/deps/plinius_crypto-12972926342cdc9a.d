/root/repo/target/debug/deps/plinius_crypto-12972926342cdc9a.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/sha256.rs Cargo.toml

/root/repo/target/debug/deps/libplinius_crypto-12972926342cdc9a.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/sha256.rs Cargo.toml

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/gcm.rs:
crates/crypto/src/sha256.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
