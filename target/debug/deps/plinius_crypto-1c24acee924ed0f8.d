/root/repo/target/debug/deps/plinius_crypto-1c24acee924ed0f8.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/sha256.rs

/root/repo/target/debug/deps/plinius_crypto-1c24acee924ed0f8: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/sha256.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/gcm.rs:
crates/crypto/src/sha256.rs:
