/root/repo/target/debug/deps/plinius_crypto-1dc65bee0c3e82bc.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/sha256.rs

/root/repo/target/debug/deps/plinius_crypto-1dc65bee0c3e82bc: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/sha256.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/gcm.rs:
crates/crypto/src/sha256.rs:
