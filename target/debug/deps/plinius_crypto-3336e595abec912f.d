/root/repo/target/debug/deps/plinius_crypto-3336e595abec912f.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/sha256.rs

/root/repo/target/debug/deps/libplinius_crypto-3336e595abec912f.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/sha256.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/gcm.rs:
crates/crypto/src/sha256.rs:
