/root/repo/target/debug/deps/plinius_crypto-3e168a861f0fe740.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/sha256.rs

/root/repo/target/debug/deps/libplinius_crypto-3e168a861f0fe740.rlib: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/sha256.rs

/root/repo/target/debug/deps/libplinius_crypto-3e168a861f0fe740.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/sha256.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/gcm.rs:
crates/crypto/src/sha256.rs:
