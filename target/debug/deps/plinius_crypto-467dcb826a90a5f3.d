/root/repo/target/debug/deps/plinius_crypto-467dcb826a90a5f3.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/sha256.rs

/root/repo/target/debug/deps/libplinius_crypto-467dcb826a90a5f3.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/sha256.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/gcm.rs:
crates/crypto/src/sha256.rs:
