/root/repo/target/debug/deps/plinius_crypto-a766b95dd5926379.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/sha256.rs Cargo.toml

/root/repo/target/debug/deps/libplinius_crypto-a766b95dd5926379.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/sha256.rs Cargo.toml

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/gcm.rs:
crates/crypto/src/sha256.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
