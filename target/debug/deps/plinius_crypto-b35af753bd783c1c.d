/root/repo/target/debug/deps/plinius_crypto-b35af753bd783c1c.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/sha256.rs

/root/repo/target/debug/deps/libplinius_crypto-b35af753bd783c1c.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/sha256.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/gcm.rs:
crates/crypto/src/sha256.rs:
