/root/repo/target/debug/deps/plinius_crypto-cc50aeb9c991f02a.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/sha256.rs

/root/repo/target/debug/deps/libplinius_crypto-cc50aeb9c991f02a.rlib: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/sha256.rs

/root/repo/target/debug/deps/libplinius_crypto-cc50aeb9c991f02a.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/sha256.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/gcm.rs:
crates/crypto/src/sha256.rs:
