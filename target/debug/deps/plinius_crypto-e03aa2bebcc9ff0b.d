/root/repo/target/debug/deps/plinius_crypto-e03aa2bebcc9ff0b.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/sha256.rs

/root/repo/target/debug/deps/libplinius_crypto-e03aa2bebcc9ff0b.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/sha256.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/gcm.rs:
crates/crypto/src/sha256.rs:
