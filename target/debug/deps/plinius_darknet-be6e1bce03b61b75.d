/root/repo/target/debug/deps/plinius_darknet-be6e1bce03b61b75.d: crates/darknet/src/lib.rs crates/darknet/src/activation.rs crates/darknet/src/config.rs crates/darknet/src/data.rs crates/darknet/src/layers/mod.rs crates/darknet/src/layers/connected.rs crates/darknet/src/layers/conv.rs crates/darknet/src/layers/maxpool.rs crates/darknet/src/layers/softmax.rs crates/darknet/src/matrix.rs crates/darknet/src/network.rs Cargo.toml

/root/repo/target/debug/deps/libplinius_darknet-be6e1bce03b61b75.rmeta: crates/darknet/src/lib.rs crates/darknet/src/activation.rs crates/darknet/src/config.rs crates/darknet/src/data.rs crates/darknet/src/layers/mod.rs crates/darknet/src/layers/connected.rs crates/darknet/src/layers/conv.rs crates/darknet/src/layers/maxpool.rs crates/darknet/src/layers/softmax.rs crates/darknet/src/matrix.rs crates/darknet/src/network.rs Cargo.toml

crates/darknet/src/lib.rs:
crates/darknet/src/activation.rs:
crates/darknet/src/config.rs:
crates/darknet/src/data.rs:
crates/darknet/src/layers/mod.rs:
crates/darknet/src/layers/connected.rs:
crates/darknet/src/layers/conv.rs:
crates/darknet/src/layers/maxpool.rs:
crates/darknet/src/layers/softmax.rs:
crates/darknet/src/matrix.rs:
crates/darknet/src/network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
