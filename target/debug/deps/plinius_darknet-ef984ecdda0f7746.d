/root/repo/target/debug/deps/plinius_darknet-ef984ecdda0f7746.d: crates/darknet/src/lib.rs crates/darknet/src/activation.rs crates/darknet/src/config.rs crates/darknet/src/data.rs crates/darknet/src/layers/mod.rs crates/darknet/src/layers/connected.rs crates/darknet/src/layers/conv.rs crates/darknet/src/layers/maxpool.rs crates/darknet/src/layers/softmax.rs crates/darknet/src/matrix.rs crates/darknet/src/network.rs

/root/repo/target/debug/deps/plinius_darknet-ef984ecdda0f7746: crates/darknet/src/lib.rs crates/darknet/src/activation.rs crates/darknet/src/config.rs crates/darknet/src/data.rs crates/darknet/src/layers/mod.rs crates/darknet/src/layers/connected.rs crates/darknet/src/layers/conv.rs crates/darknet/src/layers/maxpool.rs crates/darknet/src/layers/softmax.rs crates/darknet/src/matrix.rs crates/darknet/src/network.rs

crates/darknet/src/lib.rs:
crates/darknet/src/activation.rs:
crates/darknet/src/config.rs:
crates/darknet/src/data.rs:
crates/darknet/src/layers/mod.rs:
crates/darknet/src/layers/connected.rs:
crates/darknet/src/layers/conv.rs:
crates/darknet/src/layers/maxpool.rs:
crates/darknet/src/layers/softmax.rs:
crates/darknet/src/matrix.rs:
crates/darknet/src/network.rs:
