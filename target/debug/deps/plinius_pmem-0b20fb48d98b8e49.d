/root/repo/target/debug/deps/plinius_pmem-0b20fb48d98b8e49.d: crates/pmem/src/lib.rs crates/pmem/src/fio.rs crates/pmem/src/pool.rs

/root/repo/target/debug/deps/libplinius_pmem-0b20fb48d98b8e49.rlib: crates/pmem/src/lib.rs crates/pmem/src/fio.rs crates/pmem/src/pool.rs

/root/repo/target/debug/deps/libplinius_pmem-0b20fb48d98b8e49.rmeta: crates/pmem/src/lib.rs crates/pmem/src/fio.rs crates/pmem/src/pool.rs

crates/pmem/src/lib.rs:
crates/pmem/src/fio.rs:
crates/pmem/src/pool.rs:
