/root/repo/target/debug/deps/plinius_pmem-1a136e8ce5505e06.d: crates/pmem/src/lib.rs crates/pmem/src/fio.rs crates/pmem/src/pool.rs

/root/repo/target/debug/deps/libplinius_pmem-1a136e8ce5505e06.rmeta: crates/pmem/src/lib.rs crates/pmem/src/fio.rs crates/pmem/src/pool.rs

crates/pmem/src/lib.rs:
crates/pmem/src/fio.rs:
crates/pmem/src/pool.rs:
