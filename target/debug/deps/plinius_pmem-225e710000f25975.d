/root/repo/target/debug/deps/plinius_pmem-225e710000f25975.d: crates/pmem/src/lib.rs crates/pmem/src/fio.rs crates/pmem/src/pool.rs

/root/repo/target/debug/deps/plinius_pmem-225e710000f25975: crates/pmem/src/lib.rs crates/pmem/src/fio.rs crates/pmem/src/pool.rs

crates/pmem/src/lib.rs:
crates/pmem/src/fio.rs:
crates/pmem/src/pool.rs:
