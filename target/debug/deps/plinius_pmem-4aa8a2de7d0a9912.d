/root/repo/target/debug/deps/plinius_pmem-4aa8a2de7d0a9912.d: crates/pmem/src/lib.rs crates/pmem/src/fio.rs crates/pmem/src/pool.rs Cargo.toml

/root/repo/target/debug/deps/libplinius_pmem-4aa8a2de7d0a9912.rmeta: crates/pmem/src/lib.rs crates/pmem/src/fio.rs crates/pmem/src/pool.rs Cargo.toml

crates/pmem/src/lib.rs:
crates/pmem/src/fio.rs:
crates/pmem/src/pool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
