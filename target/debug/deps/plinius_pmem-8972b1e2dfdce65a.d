/root/repo/target/debug/deps/plinius_pmem-8972b1e2dfdce65a.d: crates/pmem/src/lib.rs crates/pmem/src/fio.rs crates/pmem/src/pool.rs

/root/repo/target/debug/deps/plinius_pmem-8972b1e2dfdce65a: crates/pmem/src/lib.rs crates/pmem/src/fio.rs crates/pmem/src/pool.rs

crates/pmem/src/lib.rs:
crates/pmem/src/fio.rs:
crates/pmem/src/pool.rs:
