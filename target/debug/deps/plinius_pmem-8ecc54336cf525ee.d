/root/repo/target/debug/deps/plinius_pmem-8ecc54336cf525ee.d: crates/pmem/src/lib.rs crates/pmem/src/fio.rs crates/pmem/src/pool.rs

/root/repo/target/debug/deps/libplinius_pmem-8ecc54336cf525ee.rmeta: crates/pmem/src/lib.rs crates/pmem/src/fio.rs crates/pmem/src/pool.rs

crates/pmem/src/lib.rs:
crates/pmem/src/fio.rs:
crates/pmem/src/pool.rs:
