/root/repo/target/debug/deps/plinius_pmem-ca8d8341b609aec0.d: crates/pmem/src/lib.rs crates/pmem/src/fio.rs crates/pmem/src/pool.rs

/root/repo/target/debug/deps/libplinius_pmem-ca8d8341b609aec0.rlib: crates/pmem/src/lib.rs crates/pmem/src/fio.rs crates/pmem/src/pool.rs

/root/repo/target/debug/deps/libplinius_pmem-ca8d8341b609aec0.rmeta: crates/pmem/src/lib.rs crates/pmem/src/fio.rs crates/pmem/src/pool.rs

crates/pmem/src/lib.rs:
crates/pmem/src/fio.rs:
crates/pmem/src/pool.rs:
