/root/repo/target/debug/deps/plinius_pmem-dfa0e5e8990330fd.d: crates/pmem/src/lib.rs crates/pmem/src/fio.rs crates/pmem/src/pool.rs

/root/repo/target/debug/deps/libplinius_pmem-dfa0e5e8990330fd.rmeta: crates/pmem/src/lib.rs crates/pmem/src/fio.rs crates/pmem/src/pool.rs

crates/pmem/src/lib.rs:
crates/pmem/src/fio.rs:
crates/pmem/src/pool.rs:
