/root/repo/target/debug/deps/plinius_pmem-f2d7a32582bafd71.d: crates/pmem/src/lib.rs crates/pmem/src/fio.rs crates/pmem/src/pool.rs

/root/repo/target/debug/deps/libplinius_pmem-f2d7a32582bafd71.rmeta: crates/pmem/src/lib.rs crates/pmem/src/fio.rs crates/pmem/src/pool.rs

crates/pmem/src/lib.rs:
crates/pmem/src/fio.rs:
crates/pmem/src/pool.rs:
