/root/repo/target/debug/deps/plinius_repro-05b5f3695e059a43.d: src/lib.rs

/root/repo/target/debug/deps/plinius_repro-05b5f3695e059a43: src/lib.rs

src/lib.rs:
