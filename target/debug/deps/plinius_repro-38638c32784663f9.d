/root/repo/target/debug/deps/plinius_repro-38638c32784663f9.d: src/lib.rs

/root/repo/target/debug/deps/libplinius_repro-38638c32784663f9.rmeta: src/lib.rs

src/lib.rs:
