/root/repo/target/debug/deps/plinius_repro-3b43146e34c382b9.d: src/lib.rs

/root/repo/target/debug/deps/libplinius_repro-3b43146e34c382b9.rmeta: src/lib.rs

src/lib.rs:
