/root/repo/target/debug/deps/plinius_repro-482cd4b65cc5fcc2.d: src/lib.rs

/root/repo/target/debug/deps/libplinius_repro-482cd4b65cc5fcc2.rmeta: src/lib.rs

src/lib.rs:
