/root/repo/target/debug/deps/plinius_repro-4b607b9a6cc78659.d: src/lib.rs

/root/repo/target/debug/deps/libplinius_repro-4b607b9a6cc78659.rlib: src/lib.rs

/root/repo/target/debug/deps/libplinius_repro-4b607b9a6cc78659.rmeta: src/lib.rs

src/lib.rs:
