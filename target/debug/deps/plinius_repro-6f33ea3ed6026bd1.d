/root/repo/target/debug/deps/plinius_repro-6f33ea3ed6026bd1.d: src/lib.rs

/root/repo/target/debug/deps/libplinius_repro-6f33ea3ed6026bd1.rmeta: src/lib.rs

src/lib.rs:
