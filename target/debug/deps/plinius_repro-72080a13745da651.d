/root/repo/target/debug/deps/plinius_repro-72080a13745da651.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libplinius_repro-72080a13745da651.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
