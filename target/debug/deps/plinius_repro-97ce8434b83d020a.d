/root/repo/target/debug/deps/plinius_repro-97ce8434b83d020a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libplinius_repro-97ce8434b83d020a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
