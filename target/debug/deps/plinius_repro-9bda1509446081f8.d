/root/repo/target/debug/deps/plinius_repro-9bda1509446081f8.d: src/lib.rs

/root/repo/target/debug/deps/libplinius_repro-9bda1509446081f8.rlib: src/lib.rs

/root/repo/target/debug/deps/libplinius_repro-9bda1509446081f8.rmeta: src/lib.rs

src/lib.rs:
