/root/repo/target/debug/deps/plinius_repro-ab8c8998cc006d69.d: src/lib.rs

/root/repo/target/debug/deps/plinius_repro-ab8c8998cc006d69: src/lib.rs

src/lib.rs:
