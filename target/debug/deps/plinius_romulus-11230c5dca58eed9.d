/root/repo/target/debug/deps/plinius_romulus-11230c5dca58eed9.d: crates/romulus/src/lib.rs crates/romulus/src/engine.rs crates/romulus/src/sps.rs

/root/repo/target/debug/deps/libplinius_romulus-11230c5dca58eed9.rlib: crates/romulus/src/lib.rs crates/romulus/src/engine.rs crates/romulus/src/sps.rs

/root/repo/target/debug/deps/libplinius_romulus-11230c5dca58eed9.rmeta: crates/romulus/src/lib.rs crates/romulus/src/engine.rs crates/romulus/src/sps.rs

crates/romulus/src/lib.rs:
crates/romulus/src/engine.rs:
crates/romulus/src/sps.rs:
