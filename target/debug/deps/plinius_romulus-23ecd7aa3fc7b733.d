/root/repo/target/debug/deps/plinius_romulus-23ecd7aa3fc7b733.d: crates/romulus/src/lib.rs crates/romulus/src/engine.rs crates/romulus/src/sps.rs

/root/repo/target/debug/deps/libplinius_romulus-23ecd7aa3fc7b733.rmeta: crates/romulus/src/lib.rs crates/romulus/src/engine.rs crates/romulus/src/sps.rs

crates/romulus/src/lib.rs:
crates/romulus/src/engine.rs:
crates/romulus/src/sps.rs:
