/root/repo/target/debug/deps/plinius_romulus-3318e6bb253a6dd4.d: crates/romulus/src/lib.rs crates/romulus/src/engine.rs crates/romulus/src/sps.rs

/root/repo/target/debug/deps/libplinius_romulus-3318e6bb253a6dd4.rmeta: crates/romulus/src/lib.rs crates/romulus/src/engine.rs crates/romulus/src/sps.rs

crates/romulus/src/lib.rs:
crates/romulus/src/engine.rs:
crates/romulus/src/sps.rs:
