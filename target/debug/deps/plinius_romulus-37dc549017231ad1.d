/root/repo/target/debug/deps/plinius_romulus-37dc549017231ad1.d: crates/romulus/src/lib.rs crates/romulus/src/engine.rs crates/romulus/src/sps.rs

/root/repo/target/debug/deps/libplinius_romulus-37dc549017231ad1.rmeta: crates/romulus/src/lib.rs crates/romulus/src/engine.rs crates/romulus/src/sps.rs

crates/romulus/src/lib.rs:
crates/romulus/src/engine.rs:
crates/romulus/src/sps.rs:
