/root/repo/target/debug/deps/plinius_romulus-4c845464df8fdd0d.d: crates/romulus/src/lib.rs crates/romulus/src/engine.rs crates/romulus/src/sps.rs

/root/repo/target/debug/deps/plinius_romulus-4c845464df8fdd0d: crates/romulus/src/lib.rs crates/romulus/src/engine.rs crates/romulus/src/sps.rs

crates/romulus/src/lib.rs:
crates/romulus/src/engine.rs:
crates/romulus/src/sps.rs:
