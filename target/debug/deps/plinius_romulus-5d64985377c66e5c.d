/root/repo/target/debug/deps/plinius_romulus-5d64985377c66e5c.d: crates/romulus/src/lib.rs crates/romulus/src/engine.rs crates/romulus/src/sps.rs

/root/repo/target/debug/deps/plinius_romulus-5d64985377c66e5c: crates/romulus/src/lib.rs crates/romulus/src/engine.rs crates/romulus/src/sps.rs

crates/romulus/src/lib.rs:
crates/romulus/src/engine.rs:
crates/romulus/src/sps.rs:
