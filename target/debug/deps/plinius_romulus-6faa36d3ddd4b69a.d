/root/repo/target/debug/deps/plinius_romulus-6faa36d3ddd4b69a.d: crates/romulus/src/lib.rs crates/romulus/src/engine.rs crates/romulus/src/sps.rs Cargo.toml

/root/repo/target/debug/deps/libplinius_romulus-6faa36d3ddd4b69a.rmeta: crates/romulus/src/lib.rs crates/romulus/src/engine.rs crates/romulus/src/sps.rs Cargo.toml

crates/romulus/src/lib.rs:
crates/romulus/src/engine.rs:
crates/romulus/src/sps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
