/root/repo/target/debug/deps/plinius_romulus-80b788b35ccbf9a8.d: crates/romulus/src/lib.rs crates/romulus/src/engine.rs crates/romulus/src/sps.rs

/root/repo/target/debug/deps/libplinius_romulus-80b788b35ccbf9a8.rlib: crates/romulus/src/lib.rs crates/romulus/src/engine.rs crates/romulus/src/sps.rs

/root/repo/target/debug/deps/libplinius_romulus-80b788b35ccbf9a8.rmeta: crates/romulus/src/lib.rs crates/romulus/src/engine.rs crates/romulus/src/sps.rs

crates/romulus/src/lib.rs:
crates/romulus/src/engine.rs:
crates/romulus/src/sps.rs:
