/root/repo/target/debug/deps/plinius_romulus-842805dc1f0f7bb9.d: crates/romulus/src/lib.rs crates/romulus/src/engine.rs crates/romulus/src/sps.rs

/root/repo/target/debug/deps/libplinius_romulus-842805dc1f0f7bb9.rmeta: crates/romulus/src/lib.rs crates/romulus/src/engine.rs crates/romulus/src/sps.rs

crates/romulus/src/lib.rs:
crates/romulus/src/engine.rs:
crates/romulus/src/sps.rs:
