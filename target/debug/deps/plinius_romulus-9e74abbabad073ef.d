/root/repo/target/debug/deps/plinius_romulus-9e74abbabad073ef.d: crates/romulus/src/lib.rs crates/romulus/src/engine.rs crates/romulus/src/sps.rs

/root/repo/target/debug/deps/libplinius_romulus-9e74abbabad073ef.rmeta: crates/romulus/src/lib.rs crates/romulus/src/engine.rs crates/romulus/src/sps.rs

crates/romulus/src/lib.rs:
crates/romulus/src/engine.rs:
crates/romulus/src/sps.rs:
