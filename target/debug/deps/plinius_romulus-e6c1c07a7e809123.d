/root/repo/target/debug/deps/plinius_romulus-e6c1c07a7e809123.d: crates/romulus/src/lib.rs crates/romulus/src/engine.rs crates/romulus/src/sps.rs Cargo.toml

/root/repo/target/debug/deps/libplinius_romulus-e6c1c07a7e809123.rmeta: crates/romulus/src/lib.rs crates/romulus/src/engine.rs crates/romulus/src/sps.rs Cargo.toml

crates/romulus/src/lib.rs:
crates/romulus/src/engine.rs:
crates/romulus/src/sps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
