/root/repo/target/debug/deps/plinius_sgx-21bb3b90ae8e44d9.d: crates/sgx/src/lib.rs crates/sgx/src/attestation.rs crates/sgx/src/enclave.rs

/root/repo/target/debug/deps/libplinius_sgx-21bb3b90ae8e44d9.rmeta: crates/sgx/src/lib.rs crates/sgx/src/attestation.rs crates/sgx/src/enclave.rs

crates/sgx/src/lib.rs:
crates/sgx/src/attestation.rs:
crates/sgx/src/enclave.rs:
