/root/repo/target/debug/deps/plinius_sgx-4971a931bf4d382e.d: crates/sgx/src/lib.rs crates/sgx/src/attestation.rs crates/sgx/src/enclave.rs

/root/repo/target/debug/deps/plinius_sgx-4971a931bf4d382e: crates/sgx/src/lib.rs crates/sgx/src/attestation.rs crates/sgx/src/enclave.rs

crates/sgx/src/lib.rs:
crates/sgx/src/attestation.rs:
crates/sgx/src/enclave.rs:
