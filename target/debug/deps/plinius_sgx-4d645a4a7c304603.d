/root/repo/target/debug/deps/plinius_sgx-4d645a4a7c304603.d: crates/sgx/src/lib.rs crates/sgx/src/attestation.rs crates/sgx/src/enclave.rs

/root/repo/target/debug/deps/libplinius_sgx-4d645a4a7c304603.rmeta: crates/sgx/src/lib.rs crates/sgx/src/attestation.rs crates/sgx/src/enclave.rs

crates/sgx/src/lib.rs:
crates/sgx/src/attestation.rs:
crates/sgx/src/enclave.rs:
