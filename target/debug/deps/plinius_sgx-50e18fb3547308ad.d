/root/repo/target/debug/deps/plinius_sgx-50e18fb3547308ad.d: crates/sgx/src/lib.rs crates/sgx/src/attestation.rs crates/sgx/src/enclave.rs

/root/repo/target/debug/deps/libplinius_sgx-50e18fb3547308ad.rmeta: crates/sgx/src/lib.rs crates/sgx/src/attestation.rs crates/sgx/src/enclave.rs

crates/sgx/src/lib.rs:
crates/sgx/src/attestation.rs:
crates/sgx/src/enclave.rs:
