/root/repo/target/debug/deps/plinius_sgx-5e37927691e4a565.d: crates/sgx/src/lib.rs crates/sgx/src/attestation.rs crates/sgx/src/enclave.rs Cargo.toml

/root/repo/target/debug/deps/libplinius_sgx-5e37927691e4a565.rmeta: crates/sgx/src/lib.rs crates/sgx/src/attestation.rs crates/sgx/src/enclave.rs Cargo.toml

crates/sgx/src/lib.rs:
crates/sgx/src/attestation.rs:
crates/sgx/src/enclave.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
