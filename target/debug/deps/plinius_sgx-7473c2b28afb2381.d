/root/repo/target/debug/deps/plinius_sgx-7473c2b28afb2381.d: crates/sgx/src/lib.rs crates/sgx/src/attestation.rs crates/sgx/src/enclave.rs

/root/repo/target/debug/deps/libplinius_sgx-7473c2b28afb2381.rlib: crates/sgx/src/lib.rs crates/sgx/src/attestation.rs crates/sgx/src/enclave.rs

/root/repo/target/debug/deps/libplinius_sgx-7473c2b28afb2381.rmeta: crates/sgx/src/lib.rs crates/sgx/src/attestation.rs crates/sgx/src/enclave.rs

crates/sgx/src/lib.rs:
crates/sgx/src/attestation.rs:
crates/sgx/src/enclave.rs:
