/root/repo/target/debug/deps/plinius_sgx-7eda805982eea92b.d: crates/sgx/src/lib.rs crates/sgx/src/attestation.rs crates/sgx/src/enclave.rs

/root/repo/target/debug/deps/plinius_sgx-7eda805982eea92b: crates/sgx/src/lib.rs crates/sgx/src/attestation.rs crates/sgx/src/enclave.rs

crates/sgx/src/lib.rs:
crates/sgx/src/attestation.rs:
crates/sgx/src/enclave.rs:
