/root/repo/target/debug/deps/plinius_sgx-890077fd1e1b3590.d: crates/sgx/src/lib.rs crates/sgx/src/attestation.rs crates/sgx/src/enclave.rs

/root/repo/target/debug/deps/libplinius_sgx-890077fd1e1b3590.rlib: crates/sgx/src/lib.rs crates/sgx/src/attestation.rs crates/sgx/src/enclave.rs

/root/repo/target/debug/deps/libplinius_sgx-890077fd1e1b3590.rmeta: crates/sgx/src/lib.rs crates/sgx/src/attestation.rs crates/sgx/src/enclave.rs

crates/sgx/src/lib.rs:
crates/sgx/src/attestation.rs:
crates/sgx/src/enclave.rs:
