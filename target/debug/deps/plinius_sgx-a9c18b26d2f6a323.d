/root/repo/target/debug/deps/plinius_sgx-a9c18b26d2f6a323.d: crates/sgx/src/lib.rs crates/sgx/src/attestation.rs crates/sgx/src/enclave.rs

/root/repo/target/debug/deps/libplinius_sgx-a9c18b26d2f6a323.rmeta: crates/sgx/src/lib.rs crates/sgx/src/attestation.rs crates/sgx/src/enclave.rs

crates/sgx/src/lib.rs:
crates/sgx/src/attestation.rs:
crates/sgx/src/enclave.rs:
