/root/repo/target/debug/deps/plinius_spot-44727416c6514b7d.d: crates/spot/src/lib.rs

/root/repo/target/debug/deps/libplinius_spot-44727416c6514b7d.rmeta: crates/spot/src/lib.rs

crates/spot/src/lib.rs:
