/root/repo/target/debug/deps/plinius_spot-4aa6804aeb3b9f78.d: crates/spot/src/lib.rs

/root/repo/target/debug/deps/libplinius_spot-4aa6804aeb3b9f78.rlib: crates/spot/src/lib.rs

/root/repo/target/debug/deps/libplinius_spot-4aa6804aeb3b9f78.rmeta: crates/spot/src/lib.rs

crates/spot/src/lib.rs:
