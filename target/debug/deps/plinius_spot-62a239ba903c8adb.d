/root/repo/target/debug/deps/plinius_spot-62a239ba903c8adb.d: crates/spot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libplinius_spot-62a239ba903c8adb.rmeta: crates/spot/src/lib.rs Cargo.toml

crates/spot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
