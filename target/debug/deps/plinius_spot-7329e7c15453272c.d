/root/repo/target/debug/deps/plinius_spot-7329e7c15453272c.d: crates/spot/src/lib.rs

/root/repo/target/debug/deps/libplinius_spot-7329e7c15453272c.rmeta: crates/spot/src/lib.rs

crates/spot/src/lib.rs:
