/root/repo/target/debug/deps/plinius_spot-7d8bf07c80a5fea0.d: crates/spot/src/lib.rs

/root/repo/target/debug/deps/plinius_spot-7d8bf07c80a5fea0: crates/spot/src/lib.rs

crates/spot/src/lib.rs:
