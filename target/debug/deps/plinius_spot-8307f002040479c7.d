/root/repo/target/debug/deps/plinius_spot-8307f002040479c7.d: crates/spot/src/lib.rs

/root/repo/target/debug/deps/libplinius_spot-8307f002040479c7.rlib: crates/spot/src/lib.rs

/root/repo/target/debug/deps/libplinius_spot-8307f002040479c7.rmeta: crates/spot/src/lib.rs

crates/spot/src/lib.rs:
