/root/repo/target/debug/deps/plinius_spot-84fb104bb58e7bb7.d: crates/spot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libplinius_spot-84fb104bb58e7bb7.rmeta: crates/spot/src/lib.rs Cargo.toml

crates/spot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
