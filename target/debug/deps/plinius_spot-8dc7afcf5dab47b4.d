/root/repo/target/debug/deps/plinius_spot-8dc7afcf5dab47b4.d: crates/spot/src/lib.rs

/root/repo/target/debug/deps/plinius_spot-8dc7afcf5dab47b4: crates/spot/src/lib.rs

crates/spot/src/lib.rs:
