/root/repo/target/debug/deps/plinius_spot-9a3f58f73c1860ed.d: crates/spot/src/lib.rs

/root/repo/target/debug/deps/libplinius_spot-9a3f58f73c1860ed.rmeta: crates/spot/src/lib.rs

crates/spot/src/lib.rs:
