/root/repo/target/debug/deps/plinius_spot-ebec3bf1406bf49d.d: crates/spot/src/lib.rs

/root/repo/target/debug/deps/libplinius_spot-ebec3bf1406bf49d.rmeta: crates/spot/src/lib.rs

crates/spot/src/lib.rs:
