/root/repo/target/debug/deps/plinius_storage-03fc1716a58aa3a6.d: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/fs.rs

/root/repo/target/debug/deps/plinius_storage-03fc1716a58aa3a6: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/fs.rs

crates/storage/src/lib.rs:
crates/storage/src/checkpoint.rs:
crates/storage/src/fs.rs:
