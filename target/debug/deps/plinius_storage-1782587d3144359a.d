/root/repo/target/debug/deps/plinius_storage-1782587d3144359a.d: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/fs.rs

/root/repo/target/debug/deps/libplinius_storage-1782587d3144359a.rmeta: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/fs.rs

crates/storage/src/lib.rs:
crates/storage/src/checkpoint.rs:
crates/storage/src/fs.rs:
