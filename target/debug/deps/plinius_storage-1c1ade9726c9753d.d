/root/repo/target/debug/deps/plinius_storage-1c1ade9726c9753d.d: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/fs.rs

/root/repo/target/debug/deps/libplinius_storage-1c1ade9726c9753d.rlib: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/fs.rs

/root/repo/target/debug/deps/libplinius_storage-1c1ade9726c9753d.rmeta: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/fs.rs

crates/storage/src/lib.rs:
crates/storage/src/checkpoint.rs:
crates/storage/src/fs.rs:
