/root/repo/target/debug/deps/plinius_storage-96a3a60d63bac5a3.d: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/fs.rs

/root/repo/target/debug/deps/libplinius_storage-96a3a60d63bac5a3.rmeta: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/fs.rs

crates/storage/src/lib.rs:
crates/storage/src/checkpoint.rs:
crates/storage/src/fs.rs:
