/root/repo/target/debug/deps/plinius_storage-a4a060fd3426f47f.d: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/fs.rs Cargo.toml

/root/repo/target/debug/deps/libplinius_storage-a4a060fd3426f47f.rmeta: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/fs.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/checkpoint.rs:
crates/storage/src/fs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
