/root/repo/target/debug/deps/plinius_storage-aae9a8f90f6f7daf.d: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/fs.rs Cargo.toml

/root/repo/target/debug/deps/libplinius_storage-aae9a8f90f6f7daf.rmeta: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/fs.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/checkpoint.rs:
crates/storage/src/fs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
