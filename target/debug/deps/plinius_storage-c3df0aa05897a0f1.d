/root/repo/target/debug/deps/plinius_storage-c3df0aa05897a0f1.d: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/fs.rs

/root/repo/target/debug/deps/plinius_storage-c3df0aa05897a0f1: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/fs.rs

crates/storage/src/lib.rs:
crates/storage/src/checkpoint.rs:
crates/storage/src/fs.rs:
