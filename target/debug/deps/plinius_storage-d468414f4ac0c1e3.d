/root/repo/target/debug/deps/plinius_storage-d468414f4ac0c1e3.d: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/fs.rs

/root/repo/target/debug/deps/libplinius_storage-d468414f4ac0c1e3.rmeta: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/fs.rs

crates/storage/src/lib.rs:
crates/storage/src/checkpoint.rs:
crates/storage/src/fs.rs:
