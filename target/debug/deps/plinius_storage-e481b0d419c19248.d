/root/repo/target/debug/deps/plinius_storage-e481b0d419c19248.d: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/fs.rs

/root/repo/target/debug/deps/libplinius_storage-e481b0d419c19248.rmeta: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/fs.rs

crates/storage/src/lib.rs:
crates/storage/src/checkpoint.rs:
crates/storage/src/fs.rs:
