/root/repo/target/debug/deps/plinius_storage-fa7666ba6ed0d35c.d: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/fs.rs

/root/repo/target/debug/deps/libplinius_storage-fa7666ba6ed0d35c.rlib: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/fs.rs

/root/repo/target/debug/deps/libplinius_storage-fa7666ba6ed0d35c.rmeta: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/fs.rs

crates/storage/src/lib.rs:
crates/storage/src/checkpoint.rs:
crates/storage/src/fs.rs:
