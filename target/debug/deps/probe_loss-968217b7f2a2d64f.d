/root/repo/target/debug/deps/probe_loss-968217b7f2a2d64f.d: crates/plinius/tests/probe_loss.rs

/root/repo/target/debug/deps/probe_loss-968217b7f2a2d64f: crates/plinius/tests/probe_loss.rs

crates/plinius/tests/probe_loss.rs:
