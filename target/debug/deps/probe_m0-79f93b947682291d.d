/root/repo/target/debug/deps/probe_m0-79f93b947682291d.d: crates/plinius/tests/probe_m0.rs

/root/repo/target/debug/deps/probe_m0-79f93b947682291d: crates/plinius/tests/probe_m0.rs

crates/plinius/tests/probe_m0.rs:
