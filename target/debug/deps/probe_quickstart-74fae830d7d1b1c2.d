/root/repo/target/debug/deps/probe_quickstart-74fae830d7d1b1c2.d: tests/probe_quickstart.rs

/root/repo/target/debug/deps/probe_quickstart-74fae830d7d1b1c2: tests/probe_quickstart.rs

tests/probe_quickstart.rs:
