/root/repo/target/debug/deps/probe_spot-06df5011c3f16298.d: tests/probe_spot.rs

/root/repo/target/debug/deps/probe_spot-06df5011c3f16298: tests/probe_spot.rs

tests/probe_spot.rs:
