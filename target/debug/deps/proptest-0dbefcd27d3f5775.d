/root/repo/target/debug/deps/proptest-0dbefcd27d3f5775.d: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs crates/shims/proptest/src/strategy.rs

/root/repo/target/debug/deps/libproptest-0dbefcd27d3f5775.rmeta: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs crates/shims/proptest/src/strategy.rs

crates/shims/proptest/src/lib.rs:
crates/shims/proptest/src/collection.rs:
crates/shims/proptest/src/strategy.rs:
