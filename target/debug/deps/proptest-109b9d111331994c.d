/root/repo/target/debug/deps/proptest-109b9d111331994c.d: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs crates/shims/proptest/src/strategy.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-109b9d111331994c.rmeta: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs crates/shims/proptest/src/strategy.rs Cargo.toml

crates/shims/proptest/src/lib.rs:
crates/shims/proptest/src/collection.rs:
crates/shims/proptest/src/strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
