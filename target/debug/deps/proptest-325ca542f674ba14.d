/root/repo/target/debug/deps/proptest-325ca542f674ba14.d: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs crates/shims/proptest/src/strategy.rs

/root/repo/target/debug/deps/libproptest-325ca542f674ba14.rmeta: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs crates/shims/proptest/src/strategy.rs

crates/shims/proptest/src/lib.rs:
crates/shims/proptest/src/collection.rs:
crates/shims/proptest/src/strategy.rs:
