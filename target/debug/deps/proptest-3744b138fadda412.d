/root/repo/target/debug/deps/proptest-3744b138fadda412.d: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs crates/shims/proptest/src/strategy.rs

/root/repo/target/debug/deps/proptest-3744b138fadda412: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs crates/shims/proptest/src/strategy.rs

crates/shims/proptest/src/lib.rs:
crates/shims/proptest/src/collection.rs:
crates/shims/proptest/src/strategy.rs:
