/root/repo/target/debug/deps/proptest-67a9261b9e211c57.d: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs crates/shims/proptest/src/strategy.rs

/root/repo/target/debug/deps/proptest-67a9261b9e211c57: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs crates/shims/proptest/src/strategy.rs

crates/shims/proptest/src/lib.rs:
crates/shims/proptest/src/collection.rs:
crates/shims/proptest/src/strategy.rs:
