/root/repo/target/debug/deps/proptest-82dee1061712c37f.d: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs crates/shims/proptest/src/strategy.rs

/root/repo/target/debug/deps/libproptest-82dee1061712c37f.rmeta: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs crates/shims/proptest/src/strategy.rs

crates/shims/proptest/src/lib.rs:
crates/shims/proptest/src/collection.rs:
crates/shims/proptest/src/strategy.rs:
