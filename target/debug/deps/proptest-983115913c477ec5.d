/root/repo/target/debug/deps/proptest-983115913c477ec5.d: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs crates/shims/proptest/src/strategy.rs

/root/repo/target/debug/deps/libproptest-983115913c477ec5.rlib: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs crates/shims/proptest/src/strategy.rs

/root/repo/target/debug/deps/libproptest-983115913c477ec5.rmeta: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs crates/shims/proptest/src/strategy.rs

crates/shims/proptest/src/lib.rs:
crates/shims/proptest/src/collection.rs:
crates/shims/proptest/src/strategy.rs:
