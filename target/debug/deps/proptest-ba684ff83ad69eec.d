/root/repo/target/debug/deps/proptest-ba684ff83ad69eec.d: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs crates/shims/proptest/src/strategy.rs

/root/repo/target/debug/deps/libproptest-ba684ff83ad69eec.rmeta: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs crates/shims/proptest/src/strategy.rs

crates/shims/proptest/src/lib.rs:
crates/shims/proptest/src/collection.rs:
crates/shims/proptest/src/strategy.rs:
