/root/repo/target/debug/deps/proptest-be1ac58f528fae5b.d: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs crates/shims/proptest/src/strategy.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-be1ac58f528fae5b.rmeta: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs crates/shims/proptest/src/strategy.rs Cargo.toml

crates/shims/proptest/src/lib.rs:
crates/shims/proptest/src/collection.rs:
crates/shims/proptest/src/strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
