/root/repo/target/debug/deps/proptest-c580c7bff94303f9.d: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs crates/shims/proptest/src/strategy.rs

/root/repo/target/debug/deps/libproptest-c580c7bff94303f9.rlib: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs crates/shims/proptest/src/strategy.rs

/root/repo/target/debug/deps/libproptest-c580c7bff94303f9.rmeta: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs crates/shims/proptest/src/strategy.rs

crates/shims/proptest/src/lib.rs:
crates/shims/proptest/src/collection.rs:
crates/shims/proptest/src/strategy.rs:
