/root/repo/target/debug/deps/proptest_atomicity-1e036031135a0220.d: crates/romulus/tests/proptest_atomicity.rs

/root/repo/target/debug/deps/libproptest_atomicity-1e036031135a0220.rmeta: crates/romulus/tests/proptest_atomicity.rs

crates/romulus/tests/proptest_atomicity.rs:
