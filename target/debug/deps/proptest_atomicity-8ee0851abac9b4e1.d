/root/repo/target/debug/deps/proptest_atomicity-8ee0851abac9b4e1.d: crates/romulus/tests/proptest_atomicity.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_atomicity-8ee0851abac9b4e1.rmeta: crates/romulus/tests/proptest_atomicity.rs Cargo.toml

crates/romulus/tests/proptest_atomicity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
