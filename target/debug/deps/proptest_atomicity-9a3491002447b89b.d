/root/repo/target/debug/deps/proptest_atomicity-9a3491002447b89b.d: crates/romulus/tests/proptest_atomicity.rs

/root/repo/target/debug/deps/libproptest_atomicity-9a3491002447b89b.rmeta: crates/romulus/tests/proptest_atomicity.rs

crates/romulus/tests/proptest_atomicity.rs:
