/root/repo/target/debug/deps/proptest_atomicity-aacd573c5bf234f9.d: crates/romulus/tests/proptest_atomicity.rs

/root/repo/target/debug/deps/proptest_atomicity-aacd573c5bf234f9: crates/romulus/tests/proptest_atomicity.rs

crates/romulus/tests/proptest_atomicity.rs:
