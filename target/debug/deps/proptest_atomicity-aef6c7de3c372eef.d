/root/repo/target/debug/deps/proptest_atomicity-aef6c7de3c372eef.d: crates/romulus/tests/proptest_atomicity.rs

/root/repo/target/debug/deps/proptest_atomicity-aef6c7de3c372eef: crates/romulus/tests/proptest_atomicity.rs

crates/romulus/tests/proptest_atomicity.rs:
