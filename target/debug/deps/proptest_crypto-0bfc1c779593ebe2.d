/root/repo/target/debug/deps/proptest_crypto-0bfc1c779593ebe2.d: crates/crypto/tests/proptest_crypto.rs

/root/repo/target/debug/deps/proptest_crypto-0bfc1c779593ebe2: crates/crypto/tests/proptest_crypto.rs

crates/crypto/tests/proptest_crypto.rs:
