/root/repo/target/debug/deps/proptest_crypto-11fb295d3b76faf3.d: crates/crypto/tests/proptest_crypto.rs

/root/repo/target/debug/deps/proptest_crypto-11fb295d3b76faf3: crates/crypto/tests/proptest_crypto.rs

crates/crypto/tests/proptest_crypto.rs:
