/root/repo/target/debug/deps/proptest_crypto-17e2c05a9ed94595.d: crates/crypto/tests/proptest_crypto.rs

/root/repo/target/debug/deps/libproptest_crypto-17e2c05a9ed94595.rmeta: crates/crypto/tests/proptest_crypto.rs

crates/crypto/tests/proptest_crypto.rs:
