/root/repo/target/debug/deps/proptest_crypto-42f19f7c35e56e5d.d: crates/crypto/tests/proptest_crypto.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_crypto-42f19f7c35e56e5d.rmeta: crates/crypto/tests/proptest_crypto.rs Cargo.toml

crates/crypto/tests/proptest_crypto.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
