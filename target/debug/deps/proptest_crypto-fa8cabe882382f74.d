/root/repo/target/debug/deps/proptest_crypto-fa8cabe882382f74.d: crates/crypto/tests/proptest_crypto.rs

/root/repo/target/debug/deps/libproptest_crypto-fa8cabe882382f74.rmeta: crates/crypto/tests/proptest_crypto.rs

crates/crypto/tests/proptest_crypto.rs:
