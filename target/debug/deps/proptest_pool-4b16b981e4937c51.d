/root/repo/target/debug/deps/proptest_pool-4b16b981e4937c51.d: crates/pmem/tests/proptest_pool.rs

/root/repo/target/debug/deps/proptest_pool-4b16b981e4937c51: crates/pmem/tests/proptest_pool.rs

crates/pmem/tests/proptest_pool.rs:
