/root/repo/target/debug/deps/proptest_pool-843d6e89109bf303.d: crates/pmem/tests/proptest_pool.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_pool-843d6e89109bf303.rmeta: crates/pmem/tests/proptest_pool.rs Cargo.toml

crates/pmem/tests/proptest_pool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
