/root/repo/target/debug/deps/proptest_pool-91319cd31ce73278.d: crates/pmem/tests/proptest_pool.rs

/root/repo/target/debug/deps/libproptest_pool-91319cd31ce73278.rmeta: crates/pmem/tests/proptest_pool.rs

crates/pmem/tests/proptest_pool.rs:
