/root/repo/target/debug/deps/proptest_pool-b2f3db1259678b36.d: crates/pmem/tests/proptest_pool.rs

/root/repo/target/debug/deps/libproptest_pool-b2f3db1259678b36.rmeta: crates/pmem/tests/proptest_pool.rs

crates/pmem/tests/proptest_pool.rs:
