/root/repo/target/debug/deps/proptest_pool-c533c04e2d9e4c63.d: crates/pmem/tests/proptest_pool.rs

/root/repo/target/debug/deps/proptest_pool-c533c04e2d9e4c63: crates/pmem/tests/proptest_pool.rs

crates/pmem/tests/proptest_pool.rs:
