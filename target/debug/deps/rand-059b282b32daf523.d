/root/repo/target/debug/deps/rand-059b282b32daf523.d: crates/shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-059b282b32daf523.rmeta: crates/shims/rand/src/lib.rs Cargo.toml

crates/shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
