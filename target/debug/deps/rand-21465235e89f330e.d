/root/repo/target/debug/deps/rand-21465235e89f330e.d: crates/shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-21465235e89f330e.rmeta: crates/shims/rand/src/lib.rs Cargo.toml

crates/shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
