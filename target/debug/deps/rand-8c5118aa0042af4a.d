/root/repo/target/debug/deps/rand-8c5118aa0042af4a.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-8c5118aa0042af4a.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
