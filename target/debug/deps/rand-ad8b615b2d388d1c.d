/root/repo/target/debug/deps/rand-ad8b615b2d388d1c.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-ad8b615b2d388d1c.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
