/root/repo/target/debug/deps/rand-d31acdac86002146.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-d31acdac86002146.rlib: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-d31acdac86002146.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
