/root/repo/target/debug/deps/rand-dbbfc94c1c139921.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/rand-dbbfc94c1c139921: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
