/root/repo/target/debug/deps/security-111848d3e67a09b3.d: tests/security.rs

/root/repo/target/debug/deps/security-111848d3e67a09b3: tests/security.rs

tests/security.rs:
