/root/repo/target/debug/deps/security-4d5565401c3e0c9e.d: tests/security.rs

/root/repo/target/debug/deps/security-4d5565401c3e0c9e: tests/security.rs

tests/security.rs:
