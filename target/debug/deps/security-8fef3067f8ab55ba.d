/root/repo/target/debug/deps/security-8fef3067f8ab55ba.d: tests/security.rs

/root/repo/target/debug/deps/libsecurity-8fef3067f8ab55ba.rmeta: tests/security.rs

tests/security.rs:
