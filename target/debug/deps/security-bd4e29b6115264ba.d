/root/repo/target/debug/deps/security-bd4e29b6115264ba.d: tests/security.rs Cargo.toml

/root/repo/target/debug/deps/libsecurity-bd4e29b6115264ba.rmeta: tests/security.rs Cargo.toml

tests/security.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
