/root/repo/target/debug/deps/security-cd8d91284273fe8e.d: tests/security.rs

/root/repo/target/debug/deps/libsecurity-cd8d91284273fe8e.rmeta: tests/security.rs

tests/security.rs:
