/root/repo/target/debug/deps/sim_clock-26df9122a35fb6a2.d: crates/sim-clock/src/lib.rs crates/sim-clock/src/cost.rs crates/sim-clock/src/stats.rs

/root/repo/target/debug/deps/libsim_clock-26df9122a35fb6a2.rlib: crates/sim-clock/src/lib.rs crates/sim-clock/src/cost.rs crates/sim-clock/src/stats.rs

/root/repo/target/debug/deps/libsim_clock-26df9122a35fb6a2.rmeta: crates/sim-clock/src/lib.rs crates/sim-clock/src/cost.rs crates/sim-clock/src/stats.rs

crates/sim-clock/src/lib.rs:
crates/sim-clock/src/cost.rs:
crates/sim-clock/src/stats.rs:
