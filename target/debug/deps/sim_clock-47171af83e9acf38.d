/root/repo/target/debug/deps/sim_clock-47171af83e9acf38.d: crates/sim-clock/src/lib.rs crates/sim-clock/src/cost.rs crates/sim-clock/src/stats.rs

/root/repo/target/debug/deps/libsim_clock-47171af83e9acf38.rmeta: crates/sim-clock/src/lib.rs crates/sim-clock/src/cost.rs crates/sim-clock/src/stats.rs

crates/sim-clock/src/lib.rs:
crates/sim-clock/src/cost.rs:
crates/sim-clock/src/stats.rs:
