/root/repo/target/debug/deps/sim_clock-753652fa65e6d9b2.d: crates/sim-clock/src/lib.rs crates/sim-clock/src/cost.rs crates/sim-clock/src/stats.rs

/root/repo/target/debug/deps/libsim_clock-753652fa65e6d9b2.rlib: crates/sim-clock/src/lib.rs crates/sim-clock/src/cost.rs crates/sim-clock/src/stats.rs

/root/repo/target/debug/deps/libsim_clock-753652fa65e6d9b2.rmeta: crates/sim-clock/src/lib.rs crates/sim-clock/src/cost.rs crates/sim-clock/src/stats.rs

crates/sim-clock/src/lib.rs:
crates/sim-clock/src/cost.rs:
crates/sim-clock/src/stats.rs:
