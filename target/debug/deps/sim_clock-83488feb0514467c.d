/root/repo/target/debug/deps/sim_clock-83488feb0514467c.d: crates/sim-clock/src/lib.rs crates/sim-clock/src/cost.rs crates/sim-clock/src/stats.rs

/root/repo/target/debug/deps/sim_clock-83488feb0514467c: crates/sim-clock/src/lib.rs crates/sim-clock/src/cost.rs crates/sim-clock/src/stats.rs

crates/sim-clock/src/lib.rs:
crates/sim-clock/src/cost.rs:
crates/sim-clock/src/stats.rs:
