/root/repo/target/debug/deps/sim_clock-aecc6a6ace76fb49.d: crates/sim-clock/src/lib.rs crates/sim-clock/src/cost.rs crates/sim-clock/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libsim_clock-aecc6a6ace76fb49.rmeta: crates/sim-clock/src/lib.rs crates/sim-clock/src/cost.rs crates/sim-clock/src/stats.rs Cargo.toml

crates/sim-clock/src/lib.rs:
crates/sim-clock/src/cost.rs:
crates/sim-clock/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
