/root/repo/target/debug/deps/sim_clock-ccf9c4f2d2ef3ee4.d: crates/sim-clock/src/lib.rs crates/sim-clock/src/cost.rs crates/sim-clock/src/stats.rs

/root/repo/target/debug/deps/libsim_clock-ccf9c4f2d2ef3ee4.rmeta: crates/sim-clock/src/lib.rs crates/sim-clock/src/cost.rs crates/sim-clock/src/stats.rs

crates/sim-clock/src/lib.rs:
crates/sim-clock/src/cost.rs:
crates/sim-clock/src/stats.rs:
