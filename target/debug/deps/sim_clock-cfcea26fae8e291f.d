/root/repo/target/debug/deps/sim_clock-cfcea26fae8e291f.d: crates/sim-clock/src/lib.rs crates/sim-clock/src/cost.rs crates/sim-clock/src/stats.rs

/root/repo/target/debug/deps/libsim_clock-cfcea26fae8e291f.rmeta: crates/sim-clock/src/lib.rs crates/sim-clock/src/cost.rs crates/sim-clock/src/stats.rs

crates/sim-clock/src/lib.rs:
crates/sim-clock/src/cost.rs:
crates/sim-clock/src/stats.rs:
