/root/repo/target/debug/deps/sim_clock-d201ac6f62f8bca6.d: crates/sim-clock/src/lib.rs crates/sim-clock/src/cost.rs crates/sim-clock/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libsim_clock-d201ac6f62f8bca6.rmeta: crates/sim-clock/src/lib.rs crates/sim-clock/src/cost.rs crates/sim-clock/src/stats.rs Cargo.toml

crates/sim-clock/src/lib.rs:
crates/sim-clock/src/cost.rs:
crates/sim-clock/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
