/root/repo/target/debug/deps/sim_clock-f285f503a074cf7e.d: crates/sim-clock/src/lib.rs crates/sim-clock/src/cost.rs crates/sim-clock/src/stats.rs

/root/repo/target/debug/deps/libsim_clock-f285f503a074cf7e.rmeta: crates/sim-clock/src/lib.rs crates/sim-clock/src/cost.rs crates/sim-clock/src/stats.rs

crates/sim-clock/src/lib.rs:
crates/sim-clock/src/cost.rs:
crates/sim-clock/src/stats.rs:
