/root/repo/target/debug/deps/sim_clock-f3e8e36b324d14aa.d: crates/sim-clock/src/lib.rs crates/sim-clock/src/cost.rs crates/sim-clock/src/stats.rs

/root/repo/target/debug/deps/sim_clock-f3e8e36b324d14aa: crates/sim-clock/src/lib.rs crates/sim-clock/src/cost.rs crates/sim-clock/src/stats.rs

crates/sim-clock/src/lib.rs:
crates/sim-clock/src/cost.rs:
crates/sim-clock/src/stats.rs:
