/root/repo/target/debug/deps/sps-05f1af0c35a2e218.d: crates/bench/benches/sps.rs

/root/repo/target/debug/deps/libsps-05f1af0c35a2e218.rmeta: crates/bench/benches/sps.rs

crates/bench/benches/sps.rs:
