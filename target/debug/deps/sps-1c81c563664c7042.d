/root/repo/target/debug/deps/sps-1c81c563664c7042.d: crates/bench/benches/sps.rs Cargo.toml

/root/repo/target/debug/deps/libsps-1c81c563664c7042.rmeta: crates/bench/benches/sps.rs Cargo.toml

crates/bench/benches/sps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
