/root/repo/target/debug/deps/sps-4e5d92ed9224a2ad.d: crates/bench/benches/sps.rs

/root/repo/target/debug/deps/libsps-4e5d92ed9224a2ad.rmeta: crates/bench/benches/sps.rs

crates/bench/benches/sps.rs:
