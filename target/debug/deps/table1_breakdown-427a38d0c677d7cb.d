/root/repo/target/debug/deps/table1_breakdown-427a38d0c677d7cb.d: crates/bench/src/bin/table1_breakdown.rs

/root/repo/target/debug/deps/table1_breakdown-427a38d0c677d7cb: crates/bench/src/bin/table1_breakdown.rs

crates/bench/src/bin/table1_breakdown.rs:
