/root/repo/target/debug/deps/table1_breakdown-6181143e5654d7cd.d: crates/bench/src/bin/table1_breakdown.rs

/root/repo/target/debug/deps/libtable1_breakdown-6181143e5654d7cd.rmeta: crates/bench/src/bin/table1_breakdown.rs

crates/bench/src/bin/table1_breakdown.rs:
