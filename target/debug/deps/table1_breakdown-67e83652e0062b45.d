/root/repo/target/debug/deps/table1_breakdown-67e83652e0062b45.d: crates/bench/src/bin/table1_breakdown.rs

/root/repo/target/debug/deps/table1_breakdown-67e83652e0062b45: crates/bench/src/bin/table1_breakdown.rs

crates/bench/src/bin/table1_breakdown.rs:
