/root/repo/target/debug/deps/table1_breakdown-6bd4af6b219784f3.d: crates/bench/src/bin/table1_breakdown.rs

/root/repo/target/debug/deps/libtable1_breakdown-6bd4af6b219784f3.rmeta: crates/bench/src/bin/table1_breakdown.rs

crates/bench/src/bin/table1_breakdown.rs:
