/root/repo/target/debug/deps/table1_breakdown-706bf7124d8466b4.d: crates/bench/src/bin/table1_breakdown.rs

/root/repo/target/debug/deps/libtable1_breakdown-706bf7124d8466b4.rmeta: crates/bench/src/bin/table1_breakdown.rs

crates/bench/src/bin/table1_breakdown.rs:
