/root/repo/target/debug/deps/table1_breakdown-732fb88381a70371.d: crates/bench/src/bin/table1_breakdown.rs

/root/repo/target/debug/deps/libtable1_breakdown-732fb88381a70371.rmeta: crates/bench/src/bin/table1_breakdown.rs

crates/bench/src/bin/table1_breakdown.rs:
