/root/repo/target/debug/deps/table1_breakdown-7e3e01243654aa4b.d: crates/bench/src/bin/table1_breakdown.rs

/root/repo/target/debug/deps/table1_breakdown-7e3e01243654aa4b: crates/bench/src/bin/table1_breakdown.rs

crates/bench/src/bin/table1_breakdown.rs:
