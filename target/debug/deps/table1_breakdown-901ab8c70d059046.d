/root/repo/target/debug/deps/table1_breakdown-901ab8c70d059046.d: crates/bench/src/bin/table1_breakdown.rs

/root/repo/target/debug/deps/table1_breakdown-901ab8c70d059046: crates/bench/src/bin/table1_breakdown.rs

crates/bench/src/bin/table1_breakdown.rs:
