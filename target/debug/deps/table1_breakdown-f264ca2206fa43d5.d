/root/repo/target/debug/deps/table1_breakdown-f264ca2206fa43d5.d: crates/bench/src/bin/table1_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_breakdown-f264ca2206fa43d5.rmeta: crates/bench/src/bin/table1_breakdown.rs Cargo.toml

crates/bench/src/bin/table1_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
