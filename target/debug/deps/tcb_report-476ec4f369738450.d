/root/repo/target/debug/deps/tcb_report-476ec4f369738450.d: crates/bench/src/bin/tcb_report.rs

/root/repo/target/debug/deps/libtcb_report-476ec4f369738450.rmeta: crates/bench/src/bin/tcb_report.rs

crates/bench/src/bin/tcb_report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
