/root/repo/target/debug/deps/tcb_report-500f446915c8652b.d: crates/bench/src/bin/tcb_report.rs

/root/repo/target/debug/deps/libtcb_report-500f446915c8652b.rmeta: crates/bench/src/bin/tcb_report.rs

crates/bench/src/bin/tcb_report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
