/root/repo/target/debug/deps/tcb_report-57e16843611329c9.d: crates/bench/src/bin/tcb_report.rs

/root/repo/target/debug/deps/tcb_report-57e16843611329c9: crates/bench/src/bin/tcb_report.rs

crates/bench/src/bin/tcb_report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
