/root/repo/target/debug/deps/tcb_report-70cddd47887274a9.d: crates/bench/src/bin/tcb_report.rs

/root/repo/target/debug/deps/tcb_report-70cddd47887274a9: crates/bench/src/bin/tcb_report.rs

crates/bench/src/bin/tcb_report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
