/root/repo/target/debug/deps/tcb_report-ad719f7d82bdf75c.d: crates/bench/src/bin/tcb_report.rs

/root/repo/target/debug/deps/tcb_report-ad719f7d82bdf75c: crates/bench/src/bin/tcb_report.rs

crates/bench/src/bin/tcb_report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
