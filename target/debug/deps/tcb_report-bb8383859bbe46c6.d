/root/repo/target/debug/deps/tcb_report-bb8383859bbe46c6.d: crates/bench/src/bin/tcb_report.rs

/root/repo/target/debug/deps/tcb_report-bb8383859bbe46c6: crates/bench/src/bin/tcb_report.rs

crates/bench/src/bin/tcb_report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
