/root/repo/target/debug/deps/tcb_report-be9907bacafb2111.d: crates/bench/src/bin/tcb_report.rs Cargo.toml

/root/repo/target/debug/deps/libtcb_report-be9907bacafb2111.rmeta: crates/bench/src/bin/tcb_report.rs Cargo.toml

crates/bench/src/bin/tcb_report.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
