/root/repo/target/debug/deps/tcb_report-e90b9c74d0dd2228.d: crates/bench/src/bin/tcb_report.rs Cargo.toml

/root/repo/target/debug/deps/libtcb_report-e90b9c74d0dd2228.rmeta: crates/bench/src/bin/tcb_report.rs Cargo.toml

crates/bench/src/bin/tcb_report.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
