/root/repo/target/debug/deps/tcb_report-ef584137250c5f1d.d: crates/bench/src/bin/tcb_report.rs

/root/repo/target/debug/deps/libtcb_report-ef584137250c5f1d.rmeta: crates/bench/src/bin/tcb_report.rs

crates/bench/src/bin/tcb_report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
