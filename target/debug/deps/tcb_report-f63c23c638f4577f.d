/root/repo/target/debug/deps/tcb_report-f63c23c638f4577f.d: crates/bench/src/bin/tcb_report.rs

/root/repo/target/debug/deps/libtcb_report-f63c23c638f4577f.rmeta: crates/bench/src/bin/tcb_report.rs

crates/bench/src/bin/tcb_report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
