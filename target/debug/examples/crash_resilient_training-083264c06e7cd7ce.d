/root/repo/target/debug/examples/crash_resilient_training-083264c06e7cd7ce.d: examples/crash_resilient_training.rs Cargo.toml

/root/repo/target/debug/examples/libcrash_resilient_training-083264c06e7cd7ce.rmeta: examples/crash_resilient_training.rs Cargo.toml

examples/crash_resilient_training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
