/root/repo/target/debug/examples/crash_resilient_training-62bac4112ee97832.d: examples/crash_resilient_training.rs

/root/repo/target/debug/examples/crash_resilient_training-62bac4112ee97832: examples/crash_resilient_training.rs

examples/crash_resilient_training.rs:
