/root/repo/target/debug/examples/crash_resilient_training-a9e76ac97d3e18ae.d: examples/crash_resilient_training.rs

/root/repo/target/debug/examples/libcrash_resilient_training-a9e76ac97d3e18ae.rmeta: examples/crash_resilient_training.rs

examples/crash_resilient_training.rs:
