/root/repo/target/debug/examples/crash_resilient_training-cb94ef7d919e0a0f.d: examples/crash_resilient_training.rs

/root/repo/target/debug/examples/crash_resilient_training-cb94ef7d919e0a0f: examples/crash_resilient_training.rs

examples/crash_resilient_training.rs:
