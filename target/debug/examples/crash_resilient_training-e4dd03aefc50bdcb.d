/root/repo/target/debug/examples/crash_resilient_training-e4dd03aefc50bdcb.d: examples/crash_resilient_training.rs

/root/repo/target/debug/examples/libcrash_resilient_training-e4dd03aefc50bdcb.rmeta: examples/crash_resilient_training.rs

examples/crash_resilient_training.rs:
