/root/repo/target/debug/examples/quickstart-2fca4d55dd6b2a24.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-2fca4d55dd6b2a24: examples/quickstart.rs

examples/quickstart.rs:
