/root/repo/target/debug/examples/quickstart-428e27f458446315.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-428e27f458446315.rmeta: examples/quickstart.rs

examples/quickstart.rs:
