/root/repo/target/debug/examples/quickstart-d7cd64ce08edeb11.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-d7cd64ce08edeb11.rmeta: examples/quickstart.rs

examples/quickstart.rs:
