/root/repo/target/debug/examples/quickstart-de4d2477b99498c5.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-de4d2477b99498c5.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
