/root/repo/target/debug/examples/quickstart-f2fb5cff30f27fb4.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f2fb5cff30f27fb4: examples/quickstart.rs

examples/quickstart.rs:
