/root/repo/target/debug/examples/secure_inference-2c6dca339753cbe0.d: examples/secure_inference.rs

/root/repo/target/debug/examples/secure_inference-2c6dca339753cbe0: examples/secure_inference.rs

examples/secure_inference.rs:
