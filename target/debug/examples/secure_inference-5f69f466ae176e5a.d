/root/repo/target/debug/examples/secure_inference-5f69f466ae176e5a.d: examples/secure_inference.rs

/root/repo/target/debug/examples/libsecure_inference-5f69f466ae176e5a.rmeta: examples/secure_inference.rs

examples/secure_inference.rs:
