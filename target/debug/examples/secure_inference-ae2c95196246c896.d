/root/repo/target/debug/examples/secure_inference-ae2c95196246c896.d: examples/secure_inference.rs Cargo.toml

/root/repo/target/debug/examples/libsecure_inference-ae2c95196246c896.rmeta: examples/secure_inference.rs Cargo.toml

examples/secure_inference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
