/root/repo/target/debug/examples/secure_inference-beca35e26ee15f14.d: examples/secure_inference.rs

/root/repo/target/debug/examples/secure_inference-beca35e26ee15f14: examples/secure_inference.rs

examples/secure_inference.rs:
