/root/repo/target/debug/examples/secure_inference-d9145261cb34c4ed.d: examples/secure_inference.rs

/root/repo/target/debug/examples/libsecure_inference-d9145261cb34c4ed.rmeta: examples/secure_inference.rs

examples/secure_inference.rs:
