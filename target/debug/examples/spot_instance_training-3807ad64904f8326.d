/root/repo/target/debug/examples/spot_instance_training-3807ad64904f8326.d: examples/spot_instance_training.rs

/root/repo/target/debug/examples/spot_instance_training-3807ad64904f8326: examples/spot_instance_training.rs

examples/spot_instance_training.rs:
