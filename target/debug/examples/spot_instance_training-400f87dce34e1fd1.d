/root/repo/target/debug/examples/spot_instance_training-400f87dce34e1fd1.d: examples/spot_instance_training.rs

/root/repo/target/debug/examples/libspot_instance_training-400f87dce34e1fd1.rmeta: examples/spot_instance_training.rs

examples/spot_instance_training.rs:
