/root/repo/target/debug/examples/spot_instance_training-4c208616ccc3faf2.d: examples/spot_instance_training.rs

/root/repo/target/debug/examples/spot_instance_training-4c208616ccc3faf2: examples/spot_instance_training.rs

examples/spot_instance_training.rs:
