/root/repo/target/debug/examples/spot_instance_training-d57934c496956fba.d: examples/spot_instance_training.rs

/root/repo/target/debug/examples/libspot_instance_training-d57934c496956fba.rmeta: examples/spot_instance_training.rs

examples/spot_instance_training.rs:
