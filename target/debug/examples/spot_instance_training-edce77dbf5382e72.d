/root/repo/target/debug/examples/spot_instance_training-edce77dbf5382e72.d: examples/spot_instance_training.rs Cargo.toml

/root/repo/target/debug/examples/libspot_instance_training-edce77dbf5382e72.rmeta: examples/spot_instance_training.rs Cargo.toml

examples/spot_instance_training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
