/root/repo/target/debug/libplinius_spot.rlib: /root/repo/crates/shims/rand/src/lib.rs /root/repo/crates/spot/src/lib.rs
