(function() {
    const implementors = Object.fromEntries([["plinius_darknet",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/str/traits/trait.FromStr.html\" title=\"trait core::str::traits::FromStr\">FromStr</a> for <a class=\"enum\" href=\"plinius_darknet/activation/enum.Activation.html\" title=\"enum plinius_darknet::activation::Activation\">Activation</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[332]}