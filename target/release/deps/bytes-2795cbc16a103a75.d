/root/repo/target/release/deps/bytes-2795cbc16a103a75.d: crates/shims/bytes/src/lib.rs

/root/repo/target/release/deps/bytes-2795cbc16a103a75: crates/shims/bytes/src/lib.rs

crates/shims/bytes/src/lib.rs:
