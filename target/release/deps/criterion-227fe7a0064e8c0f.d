/root/repo/target/release/deps/criterion-227fe7a0064e8c0f.d: crates/shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-227fe7a0064e8c0f.rlib: crates/shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-227fe7a0064e8c0f.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
