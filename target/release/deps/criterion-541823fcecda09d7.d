/root/repo/target/release/deps/criterion-541823fcecda09d7.d: crates/shims/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-541823fcecda09d7: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
