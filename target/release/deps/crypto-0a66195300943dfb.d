/root/repo/target/release/deps/crypto-0a66195300943dfb.d: crates/bench/benches/crypto.rs

/root/repo/target/release/deps/crypto-0a66195300943dfb: crates/bench/benches/crypto.rs

crates/bench/benches/crypto.rs:
