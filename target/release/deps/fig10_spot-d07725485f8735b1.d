/root/repo/target/release/deps/fig10_spot-d07725485f8735b1.d: crates/bench/src/bin/fig10_spot.rs

/root/repo/target/release/deps/fig10_spot-d07725485f8735b1: crates/bench/src/bin/fig10_spot.rs

crates/bench/src/bin/fig10_spot.rs:
