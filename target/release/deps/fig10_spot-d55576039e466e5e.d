/root/repo/target/release/deps/fig10_spot-d55576039e466e5e.d: crates/bench/src/bin/fig10_spot.rs

/root/repo/target/release/deps/fig10_spot-d55576039e466e5e: crates/bench/src/bin/fig10_spot.rs

crates/bench/src/bin/fig10_spot.rs:
