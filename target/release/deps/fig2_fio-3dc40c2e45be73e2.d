/root/repo/target/release/deps/fig2_fio-3dc40c2e45be73e2.d: crates/bench/src/bin/fig2_fio.rs

/root/repo/target/release/deps/fig2_fio-3dc40c2e45be73e2: crates/bench/src/bin/fig2_fio.rs

crates/bench/src/bin/fig2_fio.rs:
