/root/repo/target/release/deps/fig2_fio-cd875d616a0c1e7b.d: crates/bench/src/bin/fig2_fio.rs

/root/repo/target/release/deps/fig2_fio-cd875d616a0c1e7b: crates/bench/src/bin/fig2_fio.rs

crates/bench/src/bin/fig2_fio.rs:
