/root/repo/target/release/deps/fig6_sps-a9d0f0ad3d67bd36.d: crates/bench/src/bin/fig6_sps.rs

/root/repo/target/release/deps/fig6_sps-a9d0f0ad3d67bd36: crates/bench/src/bin/fig6_sps.rs

crates/bench/src/bin/fig6_sps.rs:
