/root/repo/target/release/deps/fig6_sps-f35dc027405e9907.d: crates/bench/src/bin/fig6_sps.rs

/root/repo/target/release/deps/fig6_sps-f35dc027405e9907: crates/bench/src/bin/fig6_sps.rs

crates/bench/src/bin/fig6_sps.rs:
