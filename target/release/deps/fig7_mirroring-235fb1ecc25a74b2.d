/root/repo/target/release/deps/fig7_mirroring-235fb1ecc25a74b2.d: crates/bench/src/bin/fig7_mirroring.rs

/root/repo/target/release/deps/fig7_mirroring-235fb1ecc25a74b2: crates/bench/src/bin/fig7_mirroring.rs

crates/bench/src/bin/fig7_mirroring.rs:
