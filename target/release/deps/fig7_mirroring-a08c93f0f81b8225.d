/root/repo/target/release/deps/fig7_mirroring-a08c93f0f81b8225.d: crates/bench/src/bin/fig7_mirroring.rs

/root/repo/target/release/deps/fig7_mirroring-a08c93f0f81b8225: crates/bench/src/bin/fig7_mirroring.rs

crates/bench/src/bin/fig7_mirroring.rs:
