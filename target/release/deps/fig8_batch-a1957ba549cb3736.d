/root/repo/target/release/deps/fig8_batch-a1957ba549cb3736.d: crates/bench/src/bin/fig8_batch.rs

/root/repo/target/release/deps/fig8_batch-a1957ba549cb3736: crates/bench/src/bin/fig8_batch.rs

crates/bench/src/bin/fig8_batch.rs:
