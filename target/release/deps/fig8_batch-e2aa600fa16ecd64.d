/root/repo/target/release/deps/fig8_batch-e2aa600fa16ecd64.d: crates/bench/src/bin/fig8_batch.rs

/root/repo/target/release/deps/fig8_batch-e2aa600fa16ecd64: crates/bench/src/bin/fig8_batch.rs

crates/bench/src/bin/fig8_batch.rs:
