/root/repo/target/release/deps/fig9_crash-1e576b4cbad22699.d: crates/bench/src/bin/fig9_crash.rs

/root/repo/target/release/deps/fig9_crash-1e576b4cbad22699: crates/bench/src/bin/fig9_crash.rs

crates/bench/src/bin/fig9_crash.rs:
