/root/repo/target/release/deps/fig9_crash-9507e0db247637e1.d: crates/bench/src/bin/fig9_crash.rs

/root/repo/target/release/deps/fig9_crash-9507e0db247637e1: crates/bench/src/bin/fig9_crash.rs

crates/bench/src/bin/fig9_crash.rs:
