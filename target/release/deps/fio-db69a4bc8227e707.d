/root/repo/target/release/deps/fio-db69a4bc8227e707.d: crates/bench/benches/fio.rs

/root/repo/target/release/deps/fio-db69a4bc8227e707: crates/bench/benches/fio.rs

crates/bench/benches/fio.rs:
