/root/repo/target/release/deps/inference_accuracy-797bb5d32c618215.d: crates/bench/src/bin/inference_accuracy.rs

/root/repo/target/release/deps/inference_accuracy-797bb5d32c618215: crates/bench/src/bin/inference_accuracy.rs

crates/bench/src/bin/inference_accuracy.rs:
