/root/repo/target/release/deps/inference_accuracy-b60e85d0258ca856.d: crates/bench/src/bin/inference_accuracy.rs

/root/repo/target/release/deps/inference_accuracy-b60e85d0258ca856: crates/bench/src/bin/inference_accuracy.rs

crates/bench/src/bin/inference_accuracy.rs:
