/root/repo/target/release/deps/iteration-834b243cc9fc0ee5.d: crates/bench/benches/iteration.rs

/root/repo/target/release/deps/iteration-834b243cc9fc0ee5: crates/bench/benches/iteration.rs

crates/bench/benches/iteration.rs:
