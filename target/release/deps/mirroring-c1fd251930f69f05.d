/root/repo/target/release/deps/mirroring-c1fd251930f69f05.d: crates/bench/benches/mirroring.rs

/root/repo/target/release/deps/mirroring-c1fd251930f69f05: crates/bench/benches/mirroring.rs

crates/bench/benches/mirroring.rs:
