/root/repo/target/release/deps/parking_lot-d24f68e91bccbf33.d: crates/shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/parking_lot-d24f68e91bccbf33: crates/shims/parking_lot/src/lib.rs

crates/shims/parking_lot/src/lib.rs:
