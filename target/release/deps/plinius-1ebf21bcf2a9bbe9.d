/root/repo/target/release/deps/plinius-1ebf21bcf2a9bbe9.d: crates/plinius/src/lib.rs crates/plinius/src/mirror.rs crates/plinius/src/pmdata.rs crates/plinius/src/ssd.rs crates/plinius/src/trainer.rs crates/plinius/src/workflow.rs

/root/repo/target/release/deps/libplinius-1ebf21bcf2a9bbe9.rlib: crates/plinius/src/lib.rs crates/plinius/src/mirror.rs crates/plinius/src/pmdata.rs crates/plinius/src/ssd.rs crates/plinius/src/trainer.rs crates/plinius/src/workflow.rs

/root/repo/target/release/deps/libplinius-1ebf21bcf2a9bbe9.rmeta: crates/plinius/src/lib.rs crates/plinius/src/mirror.rs crates/plinius/src/pmdata.rs crates/plinius/src/ssd.rs crates/plinius/src/trainer.rs crates/plinius/src/workflow.rs

crates/plinius/src/lib.rs:
crates/plinius/src/mirror.rs:
crates/plinius/src/pmdata.rs:
crates/plinius/src/ssd.rs:
crates/plinius/src/trainer.rs:
crates/plinius/src/workflow.rs:
