/root/repo/target/release/deps/plinius-65fc319f6cfa608a.d: crates/plinius/src/lib.rs crates/plinius/src/mirror.rs crates/plinius/src/pmdata.rs crates/plinius/src/ssd.rs crates/plinius/src/trainer.rs crates/plinius/src/workflow.rs

/root/repo/target/release/deps/plinius-65fc319f6cfa608a: crates/plinius/src/lib.rs crates/plinius/src/mirror.rs crates/plinius/src/pmdata.rs crates/plinius/src/ssd.rs crates/plinius/src/trainer.rs crates/plinius/src/workflow.rs

crates/plinius/src/lib.rs:
crates/plinius/src/mirror.rs:
crates/plinius/src/pmdata.rs:
crates/plinius/src/ssd.rs:
crates/plinius/src/trainer.rs:
crates/plinius/src/workflow.rs:
