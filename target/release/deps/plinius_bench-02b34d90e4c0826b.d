/root/repo/target/release/deps/plinius_bench-02b34d90e4c0826b.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libplinius_bench-02b34d90e4c0826b.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libplinius_bench-02b34d90e4c0826b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
