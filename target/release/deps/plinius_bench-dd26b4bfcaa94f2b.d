/root/repo/target/release/deps/plinius_bench-dd26b4bfcaa94f2b.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/plinius_bench-dd26b4bfcaa94f2b: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
