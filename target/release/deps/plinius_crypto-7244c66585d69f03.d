/root/repo/target/release/deps/plinius_crypto-7244c66585d69f03.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/sha256.rs

/root/repo/target/release/deps/plinius_crypto-7244c66585d69f03: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/sha256.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/gcm.rs:
crates/crypto/src/sha256.rs:
