/root/repo/target/release/deps/plinius_crypto-9bec05d1163466d4.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/sha256.rs

/root/repo/target/release/deps/libplinius_crypto-9bec05d1163466d4.rlib: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/sha256.rs

/root/repo/target/release/deps/libplinius_crypto-9bec05d1163466d4.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/gcm.rs crates/crypto/src/sha256.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/gcm.rs:
crates/crypto/src/sha256.rs:
