/root/repo/target/release/deps/plinius_darknet-741e1cc5a0fc35ae.d: crates/darknet/src/lib.rs crates/darknet/src/activation.rs crates/darknet/src/config.rs crates/darknet/src/data.rs crates/darknet/src/layers/mod.rs crates/darknet/src/layers/connected.rs crates/darknet/src/layers/conv.rs crates/darknet/src/layers/maxpool.rs crates/darknet/src/layers/softmax.rs crates/darknet/src/matrix.rs crates/darknet/src/network.rs

/root/repo/target/release/deps/libplinius_darknet-741e1cc5a0fc35ae.rlib: crates/darknet/src/lib.rs crates/darknet/src/activation.rs crates/darknet/src/config.rs crates/darknet/src/data.rs crates/darknet/src/layers/mod.rs crates/darknet/src/layers/connected.rs crates/darknet/src/layers/conv.rs crates/darknet/src/layers/maxpool.rs crates/darknet/src/layers/softmax.rs crates/darknet/src/matrix.rs crates/darknet/src/network.rs

/root/repo/target/release/deps/libplinius_darknet-741e1cc5a0fc35ae.rmeta: crates/darknet/src/lib.rs crates/darknet/src/activation.rs crates/darknet/src/config.rs crates/darknet/src/data.rs crates/darknet/src/layers/mod.rs crates/darknet/src/layers/connected.rs crates/darknet/src/layers/conv.rs crates/darknet/src/layers/maxpool.rs crates/darknet/src/layers/softmax.rs crates/darknet/src/matrix.rs crates/darknet/src/network.rs

crates/darknet/src/lib.rs:
crates/darknet/src/activation.rs:
crates/darknet/src/config.rs:
crates/darknet/src/data.rs:
crates/darknet/src/layers/mod.rs:
crates/darknet/src/layers/connected.rs:
crates/darknet/src/layers/conv.rs:
crates/darknet/src/layers/maxpool.rs:
crates/darknet/src/layers/softmax.rs:
crates/darknet/src/matrix.rs:
crates/darknet/src/network.rs:
