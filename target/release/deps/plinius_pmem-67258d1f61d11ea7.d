/root/repo/target/release/deps/plinius_pmem-67258d1f61d11ea7.d: crates/pmem/src/lib.rs crates/pmem/src/fio.rs crates/pmem/src/pool.rs

/root/repo/target/release/deps/plinius_pmem-67258d1f61d11ea7: crates/pmem/src/lib.rs crates/pmem/src/fio.rs crates/pmem/src/pool.rs

crates/pmem/src/lib.rs:
crates/pmem/src/fio.rs:
crates/pmem/src/pool.rs:
