/root/repo/target/release/deps/plinius_pmem-dd2d45f5240ff9cc.d: crates/pmem/src/lib.rs crates/pmem/src/fio.rs crates/pmem/src/pool.rs

/root/repo/target/release/deps/libplinius_pmem-dd2d45f5240ff9cc.rlib: crates/pmem/src/lib.rs crates/pmem/src/fio.rs crates/pmem/src/pool.rs

/root/repo/target/release/deps/libplinius_pmem-dd2d45f5240ff9cc.rmeta: crates/pmem/src/lib.rs crates/pmem/src/fio.rs crates/pmem/src/pool.rs

crates/pmem/src/lib.rs:
crates/pmem/src/fio.rs:
crates/pmem/src/pool.rs:
