/root/repo/target/release/deps/plinius_repro-0751b654ddaa364c.d: src/lib.rs

/root/repo/target/release/deps/plinius_repro-0751b654ddaa364c: src/lib.rs

src/lib.rs:
