/root/repo/target/release/deps/plinius_repro-70f1355ced7f608a.d: src/lib.rs

/root/repo/target/release/deps/libplinius_repro-70f1355ced7f608a.rlib: src/lib.rs

/root/repo/target/release/deps/libplinius_repro-70f1355ced7f608a.rmeta: src/lib.rs

src/lib.rs:
