/root/repo/target/release/deps/plinius_romulus-c246a5a9f51b84e6.d: crates/romulus/src/lib.rs crates/romulus/src/engine.rs crates/romulus/src/sps.rs

/root/repo/target/release/deps/plinius_romulus-c246a5a9f51b84e6: crates/romulus/src/lib.rs crates/romulus/src/engine.rs crates/romulus/src/sps.rs

crates/romulus/src/lib.rs:
crates/romulus/src/engine.rs:
crates/romulus/src/sps.rs:
