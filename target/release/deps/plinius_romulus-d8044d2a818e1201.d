/root/repo/target/release/deps/plinius_romulus-d8044d2a818e1201.d: crates/romulus/src/lib.rs crates/romulus/src/engine.rs crates/romulus/src/sps.rs

/root/repo/target/release/deps/libplinius_romulus-d8044d2a818e1201.rlib: crates/romulus/src/lib.rs crates/romulus/src/engine.rs crates/romulus/src/sps.rs

/root/repo/target/release/deps/libplinius_romulus-d8044d2a818e1201.rmeta: crates/romulus/src/lib.rs crates/romulus/src/engine.rs crates/romulus/src/sps.rs

crates/romulus/src/lib.rs:
crates/romulus/src/engine.rs:
crates/romulus/src/sps.rs:
