/root/repo/target/release/deps/plinius_sgx-6e48206390c15a5f.d: crates/sgx/src/lib.rs crates/sgx/src/attestation.rs crates/sgx/src/enclave.rs

/root/repo/target/release/deps/plinius_sgx-6e48206390c15a5f: crates/sgx/src/lib.rs crates/sgx/src/attestation.rs crates/sgx/src/enclave.rs

crates/sgx/src/lib.rs:
crates/sgx/src/attestation.rs:
crates/sgx/src/enclave.rs:
