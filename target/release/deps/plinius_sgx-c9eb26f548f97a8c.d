/root/repo/target/release/deps/plinius_sgx-c9eb26f548f97a8c.d: crates/sgx/src/lib.rs crates/sgx/src/attestation.rs crates/sgx/src/enclave.rs

/root/repo/target/release/deps/libplinius_sgx-c9eb26f548f97a8c.rlib: crates/sgx/src/lib.rs crates/sgx/src/attestation.rs crates/sgx/src/enclave.rs

/root/repo/target/release/deps/libplinius_sgx-c9eb26f548f97a8c.rmeta: crates/sgx/src/lib.rs crates/sgx/src/attestation.rs crates/sgx/src/enclave.rs

crates/sgx/src/lib.rs:
crates/sgx/src/attestation.rs:
crates/sgx/src/enclave.rs:
