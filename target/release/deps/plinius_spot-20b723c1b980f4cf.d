/root/repo/target/release/deps/plinius_spot-20b723c1b980f4cf.d: crates/spot/src/lib.rs

/root/repo/target/release/deps/libplinius_spot-20b723c1b980f4cf.rlib: crates/spot/src/lib.rs

/root/repo/target/release/deps/libplinius_spot-20b723c1b980f4cf.rmeta: crates/spot/src/lib.rs

crates/spot/src/lib.rs:
