/root/repo/target/release/deps/plinius_spot-83e76c9bd25a5b74.d: crates/spot/src/lib.rs

/root/repo/target/release/deps/plinius_spot-83e76c9bd25a5b74: crates/spot/src/lib.rs

crates/spot/src/lib.rs:
