/root/repo/target/release/deps/plinius_storage-d6ad60c04e286476.d: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/fs.rs

/root/repo/target/release/deps/libplinius_storage-d6ad60c04e286476.rlib: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/fs.rs

/root/repo/target/release/deps/libplinius_storage-d6ad60c04e286476.rmeta: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/fs.rs

crates/storage/src/lib.rs:
crates/storage/src/checkpoint.rs:
crates/storage/src/fs.rs:
