/root/repo/target/release/deps/plinius_storage-e6300ab4305e528a.d: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/fs.rs

/root/repo/target/release/deps/plinius_storage-e6300ab4305e528a: crates/storage/src/lib.rs crates/storage/src/checkpoint.rs crates/storage/src/fs.rs

crates/storage/src/lib.rs:
crates/storage/src/checkpoint.rs:
crates/storage/src/fs.rs:
