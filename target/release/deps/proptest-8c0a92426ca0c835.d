/root/repo/target/release/deps/proptest-8c0a92426ca0c835.d: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs crates/shims/proptest/src/strategy.rs

/root/repo/target/release/deps/proptest-8c0a92426ca0c835: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs crates/shims/proptest/src/strategy.rs

crates/shims/proptest/src/lib.rs:
crates/shims/proptest/src/collection.rs:
crates/shims/proptest/src/strategy.rs:
