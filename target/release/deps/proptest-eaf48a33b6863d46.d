/root/repo/target/release/deps/proptest-eaf48a33b6863d46.d: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs crates/shims/proptest/src/strategy.rs

/root/repo/target/release/deps/libproptest-eaf48a33b6863d46.rlib: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs crates/shims/proptest/src/strategy.rs

/root/repo/target/release/deps/libproptest-eaf48a33b6863d46.rmeta: crates/shims/proptest/src/lib.rs crates/shims/proptest/src/collection.rs crates/shims/proptest/src/strategy.rs

crates/shims/proptest/src/lib.rs:
crates/shims/proptest/src/collection.rs:
crates/shims/proptest/src/strategy.rs:
