/root/repo/target/release/deps/sim_clock-2c1b37dec86f7303.d: crates/sim-clock/src/lib.rs crates/sim-clock/src/cost.rs crates/sim-clock/src/stats.rs

/root/repo/target/release/deps/sim_clock-2c1b37dec86f7303: crates/sim-clock/src/lib.rs crates/sim-clock/src/cost.rs crates/sim-clock/src/stats.rs

crates/sim-clock/src/lib.rs:
crates/sim-clock/src/cost.rs:
crates/sim-clock/src/stats.rs:
