/root/repo/target/release/deps/sim_clock-da42eb02e33a5ce6.d: crates/sim-clock/src/lib.rs crates/sim-clock/src/cost.rs crates/sim-clock/src/stats.rs

/root/repo/target/release/deps/libsim_clock-da42eb02e33a5ce6.rlib: crates/sim-clock/src/lib.rs crates/sim-clock/src/cost.rs crates/sim-clock/src/stats.rs

/root/repo/target/release/deps/libsim_clock-da42eb02e33a5ce6.rmeta: crates/sim-clock/src/lib.rs crates/sim-clock/src/cost.rs crates/sim-clock/src/stats.rs

crates/sim-clock/src/lib.rs:
crates/sim-clock/src/cost.rs:
crates/sim-clock/src/stats.rs:
