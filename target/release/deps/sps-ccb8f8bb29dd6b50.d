/root/repo/target/release/deps/sps-ccb8f8bb29dd6b50.d: crates/bench/benches/sps.rs

/root/repo/target/release/deps/sps-ccb8f8bb29dd6b50: crates/bench/benches/sps.rs

crates/bench/benches/sps.rs:
