/root/repo/target/release/deps/table1_breakdown-5481a98579879a06.d: crates/bench/src/bin/table1_breakdown.rs

/root/repo/target/release/deps/table1_breakdown-5481a98579879a06: crates/bench/src/bin/table1_breakdown.rs

crates/bench/src/bin/table1_breakdown.rs:
