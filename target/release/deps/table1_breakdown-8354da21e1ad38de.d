/root/repo/target/release/deps/table1_breakdown-8354da21e1ad38de.d: crates/bench/src/bin/table1_breakdown.rs

/root/repo/target/release/deps/table1_breakdown-8354da21e1ad38de: crates/bench/src/bin/table1_breakdown.rs

crates/bench/src/bin/table1_breakdown.rs:
