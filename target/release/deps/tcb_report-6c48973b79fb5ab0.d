/root/repo/target/release/deps/tcb_report-6c48973b79fb5ab0.d: crates/bench/src/bin/tcb_report.rs

/root/repo/target/release/deps/tcb_report-6c48973b79fb5ab0: crates/bench/src/bin/tcb_report.rs

crates/bench/src/bin/tcb_report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
