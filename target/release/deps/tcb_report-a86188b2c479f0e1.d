/root/repo/target/release/deps/tcb_report-a86188b2c479f0e1.d: crates/bench/src/bin/tcb_report.rs

/root/repo/target/release/deps/tcb_report-a86188b2c479f0e1: crates/bench/src/bin/tcb_report.rs

crates/bench/src/bin/tcb_report.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
