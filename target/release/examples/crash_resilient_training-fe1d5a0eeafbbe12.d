/root/repo/target/release/examples/crash_resilient_training-fe1d5a0eeafbbe12.d: examples/crash_resilient_training.rs

/root/repo/target/release/examples/crash_resilient_training-fe1d5a0eeafbbe12: examples/crash_resilient_training.rs

examples/crash_resilient_training.rs:
