/root/repo/target/release/examples/quickstart-ae882af0f86977b2.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-ae882af0f86977b2: examples/quickstart.rs

examples/quickstart.rs:
