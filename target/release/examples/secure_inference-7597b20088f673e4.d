/root/repo/target/release/examples/secure_inference-7597b20088f673e4.d: examples/secure_inference.rs

/root/repo/target/release/examples/secure_inference-7597b20088f673e4: examples/secure_inference.rs

examples/secure_inference.rs:
