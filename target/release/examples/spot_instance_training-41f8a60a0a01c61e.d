/root/repo/target/release/examples/spot_instance_training-41f8a60a0a01c61e.d: examples/spot_instance_training.rs

/root/repo/target/release/examples/spot_instance_training-41f8a60a0a01c61e: examples/spot_instance_training.rs

examples/spot_instance_training.rs:
