//! Cross-crate integration tests: the full secure training pipeline, crash/resume across
//! separate contexts, and the PM-vs-SSD comparison exercised end to end.

use plinius::{
    train_with_crash_schedule, MirrorModel, PersistenceBackend, PipelineMode, PliniusBuilder,
    PliniusContext, PmDataset, TrainerConfig, TrainingSetup,
};
use plinius_crypto::Key;
use plinius_darknet::{mnist_cnn_config, synthetic_mnist};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim_clock::CostModel;

fn small_setup(max_iterations: u64) -> TrainingSetup {
    let mut setup = TrainingSetup::small_test();
    setup.trainer.max_iterations = max_iterations;
    setup
}

#[test]
fn full_workflow_produces_a_trained_model() {
    let report = plinius::run_full_workflow(&small_setup(20)).unwrap();
    assert!(report.attestation_ok);
    assert_eq!(report.final_iteration, 20);
    assert!(report.final_loss.is_finite());
}

#[test]
fn training_survives_repeated_crashes_without_losing_progress() {
    let setup = small_setup(16);
    let report = train_with_crash_schedule(&setup, &[2, 5, 9, 13], true).unwrap();
    assert_eq!(report.completed_iteration, 16);
    assert_eq!(
        report.total_iterations_executed, 16,
        "mirrored training must not redo work"
    );
    assert_eq!(report.crashes, 4);
    // The loss curve has no reset: the maximum loss after the first crash should not
    // return to the initial-loss neighbourhood (which a from-scratch restart would).
    let initial = report.losses[0];
    let after_crash_max = report
        .losses
        .iter()
        .skip(6)
        .cloned()
        .fold(f32::MIN, f32::max);
    assert!(after_crash_max <= initial * 1.25 + 0.5);
}

#[test]
fn non_resilient_training_repeats_work_after_crashes() {
    let setup = small_setup(8);
    let resilient = train_with_crash_schedule(&setup, &[4], true).unwrap();
    let fragile = train_with_crash_schedule(&setup, &[4], false).unwrap();
    assert!(fragile.total_iterations_executed > resilient.total_iterations_executed);
}

#[test]
fn mirror_and_resume_across_contexts_with_key_reprovisioning() {
    let mut rng = StdRng::seed_from_u64(1);
    let key = Key::generate_128(&mut rng);
    let dataset = synthetic_mnist(64, &mut rng);
    let cost = CostModel::eml_sgx_pm();
    let ctx = PliniusContext::create(cost.clone(), 32 * 1024 * 1024).unwrap();
    ctx.provision_key_directly(key.clone());
    PmDataset::load(&ctx, &dataset).unwrap();
    let setup = TrainingSetup {
        cost: cost.clone(),
        pm_bytes: 32 * 1024 * 1024,
        model_config: mnist_cnn_config(2, 4, 8),
        dataset,
        trainer: TrainerConfig {
            batch: 8,
            max_iterations: 10,
            mirror_frequency: 1,
            encrypted_data: true,
            seed: 5,
            pipeline: PipelineMode::from_env(),
            ring_depth: plinius::ring_depth_from_env(),
            crypto: plinius::EnginePolicy::from_env(),
            gemm: plinius::GemmPolicy::from_env(),
        },
        backend: PersistenceBackend::PmMirror,
        model_seed: 13,
    };
    let mut trainer = PliniusBuilder::new(setup.clone())
        .context(ctx)
        .build()
        .unwrap();
    trainer.run_at_most(4).unwrap();
    let pool = trainer.context().pool().clone();
    drop(trainer);

    // Simulated power failure between processes.
    let mut crash_rng = StdRng::seed_from_u64(2);
    pool.crash(&mut crash_rng, plinius_pmem::CrashMode::ArbitraryEviction);

    let ctx2 = PliniusContext::open(pool, cost).unwrap();
    ctx2.provision_key_directly(key);
    assert!(MirrorModel::exists(&ctx2));
    let mut resumed = PliniusBuilder::new(setup).context(ctx2).build().unwrap();
    assert_eq!(resumed.iteration(), 4);
    let report = resumed.run().unwrap();
    assert_eq!(report.final_iteration, 10);
}

#[test]
fn every_resilient_backend_resumes_through_the_crash_driver() {
    // The crash driver holds the simulated SSD outside the per-segment contexts, so the
    // checkpoint-on-disk backends survive a process kill exactly like the PM mirror.
    for backend in [
        PersistenceBackend::PmMirror,
        PersistenceBackend::SsdCheckpoint("e2e.ckpt".into()),
        PersistenceBackend::HybridTiered {
            ssd_path: "e2e-tier.ckpt".into(),
            demote_every: 2,
        },
    ] {
        let mut setup = small_setup(10);
        setup.backend = backend.clone();
        let report = train_with_crash_schedule(&setup, &[4, 7], true).unwrap();
        assert_eq!(report.completed_iteration, 10, "{backend:?}");
        assert_eq!(
            report.total_iterations_executed, 10,
            "{backend:?} redid work after a crash"
        );
        assert_eq!(report.crashes, 2, "{backend:?}");
    }
}

#[test]
fn pm_mirroring_beats_ssd_checkpointing_end_to_end() {
    let point = plinius_bench::mirror_point(&CostModel::sgx_eml_pm(), 3).unwrap();
    assert!(point.ssd_save_ms() / point.pm_save_ms() > 1.5);
    assert!(point.ssd_restore_ms() / point.pm_restore_ms() > 1.5);
    let real_pm = plinius_bench::mirror_point(&CostModel::eml_sgx_pm(), 3).unwrap();
    assert!(real_pm.ssd_save_ms() > real_pm.pm_save_ms());
}
