//! Cross-crate integration tests: the full secure training pipeline, crash/resume across
//! separate contexts, and the PM-vs-SSD comparison exercised end to end.

use plinius::{
    train_with_crash_schedule, MirrorModel, PersistenceBackend, PliniusContext, PliniusTrainer,
    PmDataset, TrainerConfig, TrainingSetup,
};
use plinius_crypto::Key;
use plinius_darknet::{mnist_cnn_config, synthetic_mnist};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim_clock::CostModel;

fn small_setup(max_iterations: u64) -> TrainingSetup {
    let mut setup = TrainingSetup::small_test();
    setup.trainer.max_iterations = max_iterations;
    setup
}

#[test]
fn full_workflow_produces_a_trained_model() {
    let report = plinius::run_full_workflow(&small_setup(20)).unwrap();
    assert!(report.attestation_ok);
    assert_eq!(report.final_iteration, 20);
    assert!(report.final_loss.is_finite());
}

#[test]
fn training_survives_repeated_crashes_without_losing_progress() {
    let setup = small_setup(16);
    let report = train_with_crash_schedule(&setup, &[2, 5, 9, 13], true).unwrap();
    assert_eq!(report.completed_iteration, 16);
    assert_eq!(
        report.total_iterations_executed, 16,
        "mirrored training must not redo work"
    );
    assert_eq!(report.crashes, 4);
    // The loss curve has no reset: the maximum loss after the first crash should not
    // return to the initial-loss neighbourhood (which a from-scratch restart would).
    let initial = report.losses[0];
    let after_crash_max = report
        .losses
        .iter()
        .skip(6)
        .cloned()
        .fold(f32::MIN, f32::max);
    assert!(after_crash_max <= initial * 1.25 + 0.5);
}

#[test]
fn non_resilient_training_repeats_work_after_crashes() {
    let setup = small_setup(8);
    let resilient = train_with_crash_schedule(&setup, &[4], true).unwrap();
    let fragile = train_with_crash_schedule(&setup, &[4], false).unwrap();
    assert!(fragile.total_iterations_executed > resilient.total_iterations_executed);
}

#[test]
fn mirror_and_resume_across_contexts_with_key_reprovisioning() {
    let mut rng = StdRng::seed_from_u64(1);
    let key = Key::generate_128(&mut rng);
    let dataset = synthetic_mnist(64, &mut rng);
    let cost = CostModel::eml_sgx_pm();
    let ctx = PliniusContext::create(cost.clone(), 32 * 1024 * 1024).unwrap();
    ctx.provision_key_directly(key.clone());
    PmDataset::load(&ctx, &dataset).unwrap();
    let network = plinius_darknet::build_network(&mnist_cnn_config(2, 4, 8), &mut rng).unwrap();
    let config = TrainerConfig {
        batch: 8,
        max_iterations: 10,
        mirror_frequency: 1,
        backend: PersistenceBackend::PmMirror,
        encrypted_data: true,
        seed: 5,
    };
    let mut trainer = PliniusTrainer::new(ctx, network, config.clone(), None).unwrap();
    trainer.run_at_most(4).unwrap();
    let pool = trainer.context().pool().clone();
    drop(trainer);

    // Simulated power failure between processes.
    let mut crash_rng = StdRng::seed_from_u64(2);
    pool.crash(&mut crash_rng, plinius_pmem::CrashMode::ArbitraryEviction);

    let ctx2 = PliniusContext::open(pool, cost).unwrap();
    ctx2.provision_key_directly(key);
    assert!(MirrorModel::exists(&ctx2));
    let network2 = plinius_darknet::build_network(&mnist_cnn_config(2, 4, 8), &mut rng).unwrap();
    let mut resumed = PliniusTrainer::new(ctx2, network2, config, None).unwrap();
    assert_eq!(resumed.iteration(), 4);
    let report = resumed.run().unwrap();
    assert_eq!(report.final_iteration, 10);
}

#[test]
fn pm_mirroring_beats_ssd_checkpointing_end_to_end() {
    let point = plinius_bench::mirror_point(&CostModel::sgx_eml_pm(), 3).unwrap();
    assert!(point.ssd_save_ms() / point.pm_save_ms() > 1.5);
    assert!(point.ssd_restore_ms() / point.pm_restore_ms() > 1.5);
    let real_pm = plinius_bench::mirror_point(&CostModel::eml_sgx_pm(), 3).unwrap();
    assert!(real_pm.ssd_save_ms() > real_pm.pm_save_ms());
}
