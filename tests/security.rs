//! Security-facing integration tests: the guarantees of the threat model (§III) hold in
//! the reproduction — confidentiality and integrity of the model mirror and of the
//! PM-resident training data, and attestation-gated key provisioning.

use plinius::{
    shared_ssd, HybridTieredBackend, MirrorModel, PliniusBuilder, PliniusContext, PliniusError,
    PmDataset, TrainingSetup,
};
use plinius_crypto::{CryptoError, Key};
use plinius_darknet::{mnist_cnn_config, synthetic_mnist};
use plinius_sgx::{AttestationService, DataOwner};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim_clock::CostModel;

fn ctx_with_key(seed: u64) -> (PliniusContext, Key) {
    let ctx = PliniusContext::create(CostModel::sgx_eml_pm(), 32 * 1024 * 1024).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let key = Key::generate_128(&mut rng);
    ctx.provision_key_directly(key.clone());
    (ctx, key)
}

#[test]
fn mirrored_model_is_not_stored_in_plaintext_on_pm() {
    let (ctx, _key) = ctx_with_key(1);
    let mut rng = StdRng::seed_from_u64(2);
    let net = plinius_darknet::build_network(&mnist_cnn_config(2, 4, 4), &mut rng).unwrap();
    let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
    mirror.mirror_out(&ctx, &net).unwrap();
    // Scan the raw PM media for any 64-byte window of the first layer's weights.
    let weights = net
        .layers()
        .iter()
        .find(|l| l.is_trainable())
        .unwrap()
        .params()[0]
        .data
        .to_vec();
    let needle: Vec<u8> = weights[..16.min(weights.len())]
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect();
    let media = ctx.pool().media_snapshot();
    let found = media.windows(needle.len()).any(|w| w == needle.as_slice());
    assert!(!found, "plaintext weights leaked onto persistent memory");
}

#[test]
fn tampering_with_the_pm_mirror_is_detected_on_restore() {
    let (ctx, _key) = ctx_with_key(3);
    let mut rng = StdRng::seed_from_u64(4);
    let net = plinius_darknet::build_network(&mnist_cnn_config(2, 4, 4), &mut rng).unwrap();
    let mirror = MirrorModel::allocate(&ctx, &net).unwrap();
    mirror.mirror_out(&ctx, &net).unwrap();
    // An attacker with full control of PM flips bits somewhere in the middle of the pool.
    let media = ctx.pool().media_snapshot();
    let target = media.len() / 2;
    let mut corrupted = ctx.pool().read_vec(target, 64).unwrap();
    for b in corrupted.iter_mut() {
        *b ^= 0xA5;
    }
    ctx.pool().persist(target, &corrupted).unwrap();
    let mut restored =
        plinius_darknet::build_network(&mnist_cnn_config(2, 4, 4), &mut rng).unwrap();
    match mirror.mirror_in(&ctx, &mut restored) {
        Err(PliniusError::Crypto(CryptoError::AuthenticationFailed)) => {}
        Err(other) => panic!("unexpected error kind: {other}"),
        // The flipped bytes may fall outside the sealed tensors (allocator slack); in
        // that case restoration legitimately succeeds.
        Ok(_) => {}
    }
}

#[test]
fn pm_training_data_is_encrypted_and_integrity_protected() {
    let (ctx, _key) = ctx_with_key(5);
    let mut rng = StdRng::seed_from_u64(6);
    let data = synthetic_mnist(16, &mut rng);
    let pm = PmDataset::load(&ctx, &data).unwrap();
    // Plaintext pixels must not appear on the PM media.
    let needle: Vec<u8> = data.image(0)[..16]
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect();
    let media = ctx.pool().media_snapshot();
    assert!(!media.windows(needle.len()).any(|w| w == needle.as_slice()));
    // Without the key (e.g. a rebooted enclave before re-attestation) nothing decrypts.
    ctx.enclave().remove_key(plinius::MODEL_KEY_NAME);
    assert!(matches!(
        pm.sample(&ctx, 0).unwrap_err(),
        PliniusError::KeyNotProvisioned
    ));
}

#[test]
fn demoted_ssd_checkpoints_are_not_stored_in_plaintext() {
    // The hybrid tier demotes checkpoints to the (untrusted) SSD; like the PM mirror,
    // whatever lands on the device must be sealed.
    let setup = TrainingSetup::small_test();
    let mut rng = StdRng::seed_from_u64(8);
    let key = Key::generate_128(&mut rng);
    let ctx = PliniusContext::create(setup.cost.clone(), setup.pm_bytes).unwrap();
    ctx.provision_key_directly(key);
    PmDataset::load(&ctx, &setup.dataset).unwrap();
    let ssd = shared_ssd(&ctx);
    let mut trainer = PliniusBuilder::new(setup)
        .context(ctx)
        .backend(HybridTieredBackend::on_filesystem(
            ssd.clone(),
            "tier.ckpt",
            2,
        ))
        .max_iterations(4)
        .build()
        .unwrap();
    trainer.run().unwrap();
    assert!(ssd.exists("tier.ckpt"), "no checkpoint was demoted");
    // Scan the raw checkpoint for a window of the trained model's first-layer weights.
    let weights = trainer
        .network()
        .layers()
        .iter()
        .find(|l| l.is_trainable())
        .unwrap()
        .params()[0]
        .data
        .to_vec();
    let needle: Vec<u8> = weights[..16.min(weights.len())]
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect();
    let media = ssd.read_all("tier.ckpt").unwrap();
    let found = media.windows(needle.len()).any(|w| w == needle.as_slice());
    assert!(!found, "plaintext weights leaked onto the SSD checkpoint");
}

#[test]
fn owner_never_provisions_a_key_to_an_unexpected_enclave() {
    let trusted = PliniusContext::create(CostModel::sgx_eml_pm(), 8 * 1024 * 1024).unwrap();
    let service = AttestationService::new(b"platform".to_vec());
    let mut rng = StdRng::seed_from_u64(7);
    let owner = DataOwner::new(Key::generate_128(&mut rng), trusted.enclave().measurement());
    // A different (rogue) deployment with a different measurement must be rejected.
    let rogue_enclave = plinius_sgx::Enclave::create(b"rogue-binary".to_vec());
    assert!(owner
        .provision_key(&service, &rogue_enclave, plinius::MODEL_KEY_NAME)
        .is_err());
    // The trusted one is accepted.
    trusted
        .provision_key_via_attestation(&owner, &service)
        .unwrap();
    assert!(trusted.key().is_ok());
}
